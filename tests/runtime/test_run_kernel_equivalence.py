"""The dispatch kernel's differential contract (DESIGN.md §9).

The run-based kernel (and its fully-columnar specialization) may change
*when* work happens, never *what* is observable: ledger snapshots and
final answers must be byte-identical to per-event replay across

    {event, batch} × {single, sharded(2)} × {synchronous, latency=0}

for all five scalar protocols and all six ``-2d`` spatial protocols.
The fixed grid runs on a dispatch-heavy workload (large sigma — the
regime the kernel was built for, where it takes the crossing paths
constantly); a seeded hypothesis suite then drives adversarial traces
with arbitrary jumps through the representative kernels (columnar,
run-heap, bailout).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.queries.knn import KnnQuery, TopKQuery
from repro.queries.range_query import RangeQuery
from repro.spatial.geometry import BoxRegion
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

#: The five scalar protocols, sized for a 40-stream population.
SCALAR_SPECS = {
    "zt-nrp": QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0)),
    "ft-nrp": QuerySpec(
        protocol="ft-nrp",
        query=RangeQuery(400.0, 600.0),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
    "rtp": QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=5),
        tolerance=RankTolerance(k=5, r=3),
    ),
    "zt-rp": QuerySpec(protocol="zt-rp", query=KnnQuery(q=500.0, k=5)),
    "ft-rp": QuerySpec(
        protocol="ft-rp",
        query=KnnQuery(q=500.0, k=5),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
}

QUERY_BOX = BoxRegion([300.0, 300.0], [700.0, 700.0])
CENTER = (500.0, 500.0)

#: All six spatial protocols, sized for a 40-object population.
SPATIAL_SPECS = {
    "no-filter-2d": QuerySpec(
        protocol="no-filter-2d", query=SpatialRangeQuery(QUERY_BOX)
    ),
    "zt-nrp-2d": QuerySpec(
        protocol="zt-nrp-2d", query=SpatialRangeQuery(QUERY_BOX)
    ),
    "ft-nrp-2d": QuerySpec(
        protocol="ft-nrp-2d",
        query=SpatialRangeQuery(QUERY_BOX),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
    "rtp-2d": QuerySpec(
        protocol="rtp-2d",
        query=SpatialKnnQuery(CENTER, 5),
        tolerance=RankTolerance(k=5, r=3),
    ),
    "zt-rp-2d": QuerySpec(
        protocol="zt-rp-2d", query=SpatialKnnQuery(CENTER, 5)
    ),
    "ft-rp-2d": QuerySpec(
        protocol="ft-rp-2d",
        query=SpatialKnnQuery(CENTER, 5),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
}

#: Dispatch-heavy regimes: big jumps, so the kernel crosses constantly.
SCALAR_WORKLOAD = Workload.synthetic(
    n_streams=40, horizon=40.0, sigma=150.0, seed=7
)
SPATIAL_WORKLOAD = Workload.moving_objects(
    n_objects=40, horizon=60.0, sigma=60.0, seed=7
)

GRID = [
    (n_shards, mode, latency)
    for n_shards in (1, 2)
    for mode in ("event", "batch")
    for latency in (None, 0.0)
]


def _deploy(n_shards, mode, latency) -> Deployment:
    if n_shards == 1:
        return Deployment.single(replay_mode=mode, latency=latency)
    return Deployment.sharded(n_shards, replay_mode=mode, latency=latency)


def _assert_grid_collapses(spec, workload):
    engine = Engine()
    base = engine.run(spec, workload, _deploy(1, "event", None))
    for n_shards, mode, latency in GRID:
        report = engine.run(spec, workload, _deploy(n_shards, mode, latency))
        tag = f"{spec.protocol} shards={n_shards} {mode} latency={latency}"
        assert report.ledger == base.ledger, f"{tag}: ledger diverged"
        assert report.final_answer == base.final_answer, (
            f"{tag}: answer diverged"
        )


@pytest.mark.parametrize("protocol", sorted(SCALAR_SPECS))
def test_scalar_grid_collapses_to_one_ledger(protocol):
    _assert_grid_collapses(SCALAR_SPECS[protocol], SCALAR_WORKLOAD)


@pytest.mark.parametrize("protocol", sorted(SPATIAL_SPECS))
def test_spatial_grid_collapses_to_one_ledger(protocol):
    _assert_grid_collapses(SPATIAL_SPECS[protocol], SPATIAL_WORKLOAD)


# ----------------------------------------------------------------------
# Hypothesis: adversarial traces through the representative kernels
# ----------------------------------------------------------------------
N_STREAMS = 12


@st.composite
def adversarial_traces(draw):
    """A small trace with arbitrary jumps and globally distinct values."""
    n_records = draw(st.integers(0, 50))
    pool = draw(
        st.lists(
            st.floats(0.0, 1000.0, allow_nan=False),
            min_size=N_STREAMS + n_records,
            max_size=N_STREAMS + n_records,
            unique_by=lambda v: abs(v - 500.0),
        )
    )
    initial, values = pool[:N_STREAMS], pool[N_STREAMS:]
    ids = draw(
        st.lists(
            st.integers(0, N_STREAMS - 1),
            min_size=n_records,
            max_size=n_records,
        )
    )
    times = np.arange(1.0, n_records + 1.0)
    return StreamTrace(
        initial_values=np.array(initial),
        times=times,
        stream_ids=np.array(ids, dtype=np.int64),
        values=np.array(values),
        horizon=float(n_records + 1),
    )


@given(adversarial_traces())
@settings(max_examples=25, deadline=None)
def test_columnar_kernel_identical_on_adversarial_traces(trace):
    """zt-nrp: the fully-columnar path vs per-event, both topologies."""
    _assert_grid_collapses(
        SCALAR_SPECS["zt-nrp"], Workload.from_trace(trace)
    )


@given(adversarial_traces())
@settings(max_examples=15, deadline=None)
def test_run_kernel_identical_on_adversarial_traces(trace):
    """rtp: broadcast-heavy run-heap path (rescans + bailout) vs
    per-event, both topologies."""
    _assert_grid_collapses(SCALAR_SPECS["rtp"], Workload.from_trace(trace))
