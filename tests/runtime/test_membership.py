"""Unit tests for the kernel's membership strategies."""

import math

import pytest

from repro.runtime.membership import (
    REPORT,
    IntervalMembership,
    RecenteringWindowMembership,
    SlottedMembership,
)
from repro.streams.filters import (
    FALSE_NEGATIVE_FILTER,
    FALSE_POSITIVE_FILTER,
    FilterConstraint,
)


class TestIntervalMembership:
    def test_no_constraint_reports_everything(self):
        m = IntervalMembership()
        assert m.evaluate(1.0) is REPORT
        assert m.evaluate(1.0) is REPORT  # even unchanged values

    def test_reports_only_on_flip(self):
        m = IntervalMembership()
        m.install(FilterConstraint(0.0, 10.0), None, 5.0)
        assert m.evaluate(7.0) is None       # inside -> inside
        assert m.evaluate(12.0) is REPORT    # crossed out
        assert m.evaluate(20.0) is None      # outside -> outside
        assert m.evaluate(3.0) is REPORT     # crossed back in

    def test_stale_belief_demands_self_correction(self):
        m = IntervalMembership()
        assert m.install(FilterConstraint(0.0, 10.0), True, 15.0) is True
        assert m.reported_inside is False  # corrected

    def test_correct_belief_stays_silent(self):
        m = IntervalMembership()
        assert m.install(FilterConstraint(0.0, 10.0), False, 15.0) is False

    def test_silencing_filters_never_flip(self):
        for constraint in (FALSE_POSITIVE_FILTER, FALSE_NEGATIVE_FILTER):
            m = IntervalMembership()
            assert m.install(constraint, True, 5.0) is False
            for value in (0.0, 1e9, -1e9):
                assert m.evaluate(value) is None

    def test_resync_aligns_belief(self):
        m = IntervalMembership()
        m.install(FilterConstraint(0.0, 10.0), None, 5.0)
        m.reported_inside = False  # simulate stale state
        m.resync(5.0)
        assert m.reported_inside is True

    def test_quiescence_rows(self):
        m = IntervalMembership()
        assert m.quiescence_rows() is None  # bare stream: never quiescent
        m.install(FilterConstraint(2.0, 8.0), None, 5.0)
        assert m.quiescence_rows() == [(2.0, 8.0, True)]


class TestRecenteringWindow:
    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            RecenteringWindowMembership(width=-1.0, center=0.0)

    def test_report_recenters(self):
        m = RecenteringWindowMembership(width=10.0, center=10.0)
        assert m.evaluate(14.0) is None
        assert m.evaluate(16.0) is REPORT
        assert m.center == 16.0
        assert m.evaluate(20.0) is None  # inside the recentred window

    def test_deployments_rejected(self):
        m = RecenteringWindowMembership(width=1.0, center=0.0)
        with pytest.raises(TypeError):
            m.install(FilterConstraint(0.0, 1.0), None, 0.0)

    def test_quiescence_rows_follow_center(self):
        m = RecenteringWindowMembership(width=10.0, center=10.0)
        assert m.quiescence_rows() == [(5.0, 15.0, True)]
        m.evaluate(30.0)
        assert m.quiescence_rows() == [(25.0, 35.0, True)]

    def test_evaluate_agrees_with_rows_at_fp_boundaries(self):
        """Regression: abs(v - c) > w/2 and the closed-interval bound
        disagree by one ulp for e.g. c=0.3, w=0.2, v=0.4; evaluate must
        use the rows' predicate or batch replay drops a report."""
        m = RecenteringWindowMembership(width=0.2, center=0.3)
        ((lower, upper, _),) = m.quiescence_rows()
        for v in (0.4, 0.2, 0.1 + 0.3, 0.30000000000000004):
            quiescent_by_rows = lower <= v <= upper
            reported = m.evaluate(v) is not None
            assert reported != quiescent_by_rows, v
            m.center = 0.3  # undo any recentering for the next probe


class TestSlottedMembership:
    def test_bare_source_notifies_everyone(self):
        m = SlottedMembership()
        assert m.evaluate(1.0) is REPORT

    def test_only_flipped_slots_tagged(self):
        m = SlottedMembership()
        m.install_slot("a", FilterConstraint(0.0, 10.0), None, 5.0)
        m.install_slot("b", FilterConstraint(7.0, 20.0), None, 5.0)
        assert m.evaluate(8.0) == ["b"]   # enters b, stays in a
        assert m.evaluate(12.0) == ["a"]  # leaves a, stays in b
        assert m.evaluate(13.0) is None   # nothing flips

    def test_silencing_slots_skipped(self):
        m = SlottedMembership()
        m.install_slot("a", FALSE_POSITIVE_FILTER, None, 5.0)
        assert m.evaluate(1e9) is None

    def test_quiescence_rows_one_per_slot(self):
        m = SlottedMembership()
        assert m.quiescence_rows() is None
        m.install_slot("a", FilterConstraint(0.0, 10.0), None, 5.0)
        m.install_slot("b", FilterConstraint(7.0, 20.0), None, 5.0)
        assert m.quiescence_rows() == [
            (0.0, 10.0, True),
            (7.0, 20.0, False),
        ]

    def test_stale_slot_belief_self_corrects(self):
        m = SlottedMembership()
        assert (
            m.install_slot("a", FilterConstraint(0.0, 10.0), False, 5.0)
            is True
        )
        assert m.reported_inside["a"] is True

    def test_resync_slot_touches_only_that_slot(self):
        m = SlottedMembership()
        m.install_slot("a", FilterConstraint(0.0, 10.0), None, 5.0)
        m.install_slot("b", FilterConstraint(0.0, 10.0), None, 5.0)
        m.reported_inside["a"] = False
        m.reported_inside["b"] = False
        m.resync_slot("a", 5.0)
        assert m.reported_inside == {"a": True, "b": False}


def test_interval_rows_infinite_bounds_stay_quiescent():
    """Silencing filters express naturally as bounds that never flip."""
    m = IntervalMembership()
    m.install(FALSE_POSITIVE_FILTER, None, 5.0)
    ((lower, upper, inside),) = m.quiescence_rows()
    assert lower == -math.inf and upper == math.inf and inside is True
    m2 = IntervalMembership()
    m2.install(FALSE_NEGATIVE_FILTER, None, 5.0)
    ((lower, upper, inside),) = m2.quiescence_rows()
    assert lower == math.inf and inside is False
