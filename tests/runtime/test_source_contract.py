"""The FilteredSource strategy contract: kernel ports == legacy sources.

Each kernel-ported source class must produce *identical message ledgers*
to the seed repo's hand-rolled implementation on shared traces.  The
reference implementations below are faithful copies of the pre-kernel
semantics; the suite drives both sides through the same randomized
script of value changes, probes and deployments and compares every
message that crosses the channel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.accounting import MessageLedger
from repro.network.channel import Channel
from repro.network.messages import (
    ConstraintMessage,
    MessageKind,
    ProbeRequestMessage,
    UpdateMessage,
)
from repro.spatial.geometry import BallRegion, BoxRegion, as_point
from repro.spatial.messages import (
    PointProbeRequestMessage,
    PointUpdateMessage,
    RegionConstraintMessage,
)
from repro.spatial.source import SpatialStreamSource
from repro.streams.filters import FilterConstraint
from repro.streams.source import StreamSource
from repro.valuebased.source import WindowFilterSource


# ----------------------------------------------------------------------
# Reference (pre-kernel) implementations
# ----------------------------------------------------------------------
class LegacyStreamSource:
    """Verbatim seed semantics of the scalar stream source."""

    def __init__(self, stream_id, initial_value, channel):
        self.stream_id = stream_id
        self.value = float(initial_value)
        self.channel = channel
        self.constraint = None
        self._reported_inside = False
        channel.bind_source(stream_id, self._handle_message)

    def apply_value(self, value, time):
        self.value = float(value)
        if self.constraint is None:
            self._report(time)
            return
        inside = self.constraint.contains(self.value)
        if inside != self._reported_inside:
            self._reported_inside = inside
            self._report(time)

    def _report(self, time):
        self.channel.send_to_server(
            UpdateMessage(stream_id=self.stream_id, time=time, value=self.value)
        )

    def _handle_message(self, message):
        if message.kind is MessageKind.PROBE_REQUEST:
            if self.constraint is not None:
                self._reported_inside = self.constraint.contains(self.value)
            from repro.network.messages import ProbeReplyMessage

            self.channel.send_to_server(
                ProbeReplyMessage(
                    stream_id=self.stream_id,
                    time=message.time,
                    value=self.value,
                )
            )
            return
        assert message.kind is MessageKind.CONSTRAINT
        self.constraint = FilterConstraint(message.lower, message.upper)
        if self.constraint.is_silencing:
            self._reported_inside = self.constraint.contains(self.value)
            return
        assumed = message.assumed_inside
        actual = self.constraint.contains(self.value)
        if assumed is None:
            self._reported_inside = actual
            return
        self._reported_inside = bool(assumed)
        if actual != self._reported_inside:
            self._reported_inside = actual
            self._report(message.time)


class LegacyWindowSource:
    """Verbatim seed semantics of the value-window source."""

    def __init__(self, stream_id, initial_value, channel, width):
        self.stream_id = stream_id
        self.value = float(initial_value)
        self.width = float(width)
        self.channel = channel
        self._center = float(initial_value)
        channel.bind_source(stream_id, self._handle_message)

    def apply_value(self, value, time):
        self.value = float(value)
        if abs(self.value - self._center) > self.width / 2.0:
            self._center = self.value
            self.channel.send_to_server(
                UpdateMessage(
                    stream_id=self.stream_id, time=time, value=self.value
                )
            )

    def _handle_message(self, message):
        assert message.kind is MessageKind.PROBE_REQUEST
        self._center = self.value
        from repro.network.messages import ProbeReplyMessage

        self.channel.send_to_server(
            ProbeReplyMessage(
                stream_id=self.stream_id, time=message.time, value=self.value
            )
        )


class LegacySpatialSource:
    """Verbatim seed semantics of the spatial source."""

    def __init__(self, stream_id, initial_point, channel):
        self.stream_id = stream_id
        self.point = as_point(initial_point)
        self.channel = channel
        self.region = None
        self._reported_inside = False
        channel.bind_source(stream_id, self._handle_message)

    def apply_point(self, point, time):
        self.point = as_point(point)
        if self.region is None:
            self._report(time)
            return
        inside = self.region.contains(self.point)
        if inside != self._reported_inside:
            self._reported_inside = inside
            self._report(time)

    def _report(self, time):
        self.channel.send_to_server(
            PointUpdateMessage(
                stream_id=self.stream_id, time=time, point=self.point.copy()
            )
        )

    def _handle_message(self, message):
        if message.kind is MessageKind.PROBE_REQUEST:
            if self.region is not None:
                self._reported_inside = self.region.contains(self.point)
            from repro.spatial.messages import PointProbeReplyMessage

            self.channel.send_to_server(
                PointProbeReplyMessage(
                    stream_id=self.stream_id,
                    time=message.time,
                    point=self.point.copy(),
                )
            )
            return
        assert message.kind is MessageKind.CONSTRAINT
        self.region = message.region
        if self.region.is_silencing:
            self._reported_inside = self.region.contains(self.point)
            return
        actual = self.region.contains(self.point)
        if message.assumed_inside is None:
            self._reported_inside = actual
            return
        self._reported_inside = bool(message.assumed_inside)
        if actual != self._reported_inside:
            self._reported_inside = actual
            self._report(message.time)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _sink_system(make_source):
    ledger = MessageLedger()
    channel = Channel(ledger)
    received = []
    channel.bind_server(received.append)
    source = make_source(channel)
    return channel, ledger, source, received


def _messages_digest(received):
    """A comparable rendering of every server-bound message."""
    digest = []
    for message in received:
        payload = getattr(message, "value", None)
        if payload is None:
            payload = tuple(message.point.tolist())
        digest.append((message.kind, message.stream_id, message.time, payload))
    return digest


SCALAR_SEEDS = [0, 1, 2, 3]


@pytest.mark.parametrize("seed", SCALAR_SEEDS)
def test_stream_source_matches_legacy(seed):
    rng = np.random.default_rng(seed)
    script = []
    for step in range(400):
        roll = rng.random()
        if roll < 0.7:
            script.append(("value", float(rng.normal(500.0, 120.0))))
        elif roll < 0.85:
            script.append(("probe",))
        else:
            lower = float(rng.uniform(300.0, 500.0))
            assumed = rng.choice([None, True, False])
            script.append(
                ("deploy", lower, lower + float(rng.uniform(10.0, 300.0)),
                 None if assumed is None else bool(assumed))
            )

    def drive(source_cls):
        channel, ledger, source, received = _sink_system(
            lambda ch: source_cls(0, 500.0, ch)
        )
        for t, action in enumerate(script, start=1):
            if action[0] == "value":
                source.apply_value(action[1], float(t))
            elif action[0] == "probe":
                channel.send_to_source(ProbeRequestMessage(0, float(t)))
            else:
                channel.send_to_source(
                    ConstraintMessage(
                        0, float(t), lower=action[1], upper=action[2],
                        assumed_inside=action[3],
                    )
                )
        return ledger.snapshot(), _messages_digest(received)

    legacy = drive(LegacyStreamSource)
    kernel = drive(StreamSource)
    assert legacy == kernel


@pytest.mark.parametrize("seed", SCALAR_SEEDS)
@pytest.mark.parametrize("width", [0.0, 25.0, 400.0])
def test_window_source_matches_legacy(seed, width):
    rng = np.random.default_rng(seed)
    script = []
    for step in range(400):
        if rng.random() < 0.9:
            script.append(("value", float(rng.normal(500.0, 60.0))))
        else:
            script.append(("probe",))

    def drive(source_cls):
        channel, ledger, source, received = _sink_system(
            lambda ch: source_cls(0, 500.0, ch, width)
        )
        for t, action in enumerate(script, start=1):
            if action[0] == "value":
                source.apply_value(action[1], float(t))
            else:
                channel.send_to_source(ProbeRequestMessage(0, float(t)))
        return ledger.snapshot(), _messages_digest(received)

    legacy = drive(
        lambda sid, v, ch, w=width: LegacyWindowSource(sid, v, ch, w)
    )
    kernel = drive(
        lambda sid, v, ch, w=width: WindowFilterSource(sid, v, ch, width=w)
    )
    assert legacy == kernel


@pytest.mark.parametrize("seed", SCALAR_SEEDS)
def test_spatial_source_matches_legacy(seed):
    rng = np.random.default_rng(seed)
    script = []
    for step in range(300):
        roll = rng.random()
        if roll < 0.7:
            script.append(("point", rng.uniform(0.0, 100.0, size=2).tolist()))
        elif roll < 0.85:
            script.append(("probe",))
        else:
            if rng.random() < 0.5:
                center = rng.uniform(20.0, 80.0, size=2)
                region = BallRegion(center, float(rng.uniform(5.0, 40.0)))
            else:
                lows = rng.uniform(0.0, 50.0, size=2)
                region = BoxRegion(lows, lows + rng.uniform(5.0, 50.0, size=2))
            assumed = rng.choice([None, True, False])
            script.append(
                ("deploy", region, None if assumed is None else bool(assumed))
            )

    def drive(source_cls):
        channel, ledger, source, received = _sink_system(
            lambda ch: source_cls(0, [50.0, 50.0], ch)
        )
        for t, action in enumerate(script, start=1):
            if action[0] == "point":
                source.apply_point(action[1], float(t))
            elif action[0] == "probe":
                channel.send_to_source(PointProbeRequestMessage(0, float(t)))
            else:
                channel.send_to_source(
                    RegionConstraintMessage(
                        0, float(t), region=action[1], assumed_inside=action[2]
                    )
                )
        return ledger.snapshot(), _messages_digest(received)

    legacy = drive(LegacySpatialSource)
    kernel = drive(SpatialStreamSource)
    assert legacy == kernel


@pytest.mark.parametrize("seed", SCALAR_SEEDS)
def test_multiquery_source_matches_legacy(seed):
    """The slotted port must reproduce the seed's shared-update stream."""
    from repro.multiquery.source import MultiQuerySource

    class LegacyMultiQuerySource:
        def __init__(self, stream_id, initial_value, coordinator):
            self.stream_id = stream_id
            self.value = float(initial_value)
            self.coordinator = coordinator
            self._constraints = {}
            self._reported = {}

        def apply_value(self, value, time):
            self.value = float(value)
            if not self._constraints:
                self.coordinator.receive_update(
                    self.stream_id, self.value, time, flipped=None
                )
                return
            flipped = []
            for query_id, constraint in self._constraints.items():
                if constraint.is_silencing:
                    continue
                inside = constraint.contains(self.value)
                if inside != self._reported[query_id]:
                    self._reported[query_id] = inside
                    flipped.append(query_id)
            if flipped:
                self.coordinator.receive_update(
                    self.stream_id, self.value, time, flipped=flipped
                )

        def install(self, query_id, constraint, assumed_inside, time):
            self._constraints[query_id] = constraint
            if constraint.is_silencing:
                self._reported[query_id] = constraint.contains(self.value)
                return
            actual = constraint.contains(self.value)
            if assumed_inside is None:
                self._reported[query_id] = actual
                return
            self._reported[query_id] = bool(assumed_inside)
            if actual != self._reported[query_id]:
                self._reported[query_id] = actual
                self.coordinator.receive_update(
                    self.stream_id, self.value, time, flipped=[query_id]
                )

        def probe(self, query_id):
            constraint = self._constraints.get(query_id)
            if constraint is not None:
                self._reported[query_id] = constraint.contains(self.value)
            return self.value

    class SinkCoordinator:
        def __init__(self):
            self.received = []

        def receive_update(self, stream_id, value, time, flipped):
            self.received.append((stream_id, value, time, flipped))

    rng = np.random.default_rng(seed)
    script = []
    for step in range(400):
        roll = rng.random()
        if roll < 0.6:
            script.append(("value", float(rng.normal(500.0, 120.0))))
        elif roll < 0.75:
            script.append(("probe", rng.choice(["a", "b"])))
        else:
            lower = float(rng.uniform(300.0, 500.0))
            assumed = rng.choice([None, True, False])
            script.append(
                ("install", str(rng.choice(["a", "b"])), lower,
                 lower + float(rng.uniform(10.0, 300.0)),
                 None if assumed is None else bool(assumed))
            )

    def drive(source_cls):
        coordinator = SinkCoordinator()
        source = source_cls(0, 500.0, coordinator)
        for t, action in enumerate(script, start=1):
            if action[0] == "value":
                source.apply_value(action[1], float(t))
            elif action[0] == "probe":
                source.probe(action[1])
            else:
                source.install(
                    action[1],
                    FilterConstraint(action[2], action[3]),
                    action[4],
                    float(t),
                )
        return coordinator.received

    assert drive(LegacyMultiQuerySource) == drive(MultiQuerySource)
