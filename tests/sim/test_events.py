"""Unit tests for the event queue primitives."""

import pytest

from repro.sim.events import Event, EventQueue, SimulationError


def test_push_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append(3))
    queue.push(1.0, lambda: fired.append(1))
    queue.push(2.0, lambda: fired.append(2))
    while queue:
        queue.pop().action()
    assert fired == [1, 2, 3]


def test_equal_times_fire_fifo():
    queue = EventQueue()
    fired = []
    for i in range(10):
        queue.push(5.0, (lambda j: lambda: fired.append(j))(i))
    while queue:
        queue.pop().action()
    assert fired == list(range(10))


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.pop()


def test_cancelled_event_is_skipped():
    queue = EventQueue()
    fired = []
    event = queue.push(1.0, lambda: fired.append("cancelled"))
    queue.push(2.0, lambda: fired.append("kept"))
    event.cancel()
    queue.pop().action()
    assert fired == ["kept"]
    assert not queue


def test_len_excludes_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    first.cancel()
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(4.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 4.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert not queue
    assert queue.peek_time() is None


def test_event_labels_are_kept():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None, label="update")
    assert event.label == "update"


def test_event_ordering_uses_seq_for_ties():
    early = Event(time=1.0, seq=0, action=lambda: None)
    late = Event(time=1.0, seq=1, action=lambda: None)
    assert early < late
