"""Unit tests for the simulation engine."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.events import SimulationError


def test_run_fires_in_time_order():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(2.0, lambda: fired.append("b"))
    engine.schedule_at(1.0, lambda: fired.append("a"))
    engine.run()
    assert fired == ["a", "b"]
    assert engine.now == 2.0


def test_schedule_after_uses_current_time():
    engine = SimulationEngine()
    times = []

    def first():
        engine.schedule_after(5.0, lambda: times.append(engine.now))

    engine.schedule_at(10.0, first)
    engine.run()
    assert times == [15.0]


def test_run_until_stops_and_advances_clock():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(1.0, lambda: fired.append(1))
    engine.schedule_at(5.0, lambda: fired.append(5))
    engine.run(until=3.0)
    assert fired == [1]
    assert engine.now == 3.0
    engine.run()
    assert fired == [1, 5]


def test_run_until_with_no_events_advances_clock():
    engine = SimulationEngine()
    engine.run(until=42.0)
    assert engine.now == 42.0


def test_scheduling_in_the_past_raises():
    engine = SimulationEngine()
    engine.schedule_at(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(1.0, lambda: None)


def test_negative_delay_raises():
    engine = SimulationEngine()
    with pytest.raises(SimulationError):
        engine.schedule_after(-1.0, lambda: None)


def test_events_scheduled_during_run_fire():
    engine = SimulationEngine()
    fired = []

    def chain(depth: int):
        fired.append(depth)
        if depth < 3:
            engine.schedule_after(1.0, lambda: chain(depth + 1))

    engine.schedule_at(0.0, lambda: chain(0))
    engine.run()
    assert fired == [0, 1, 2, 3]
    assert engine.now == 3.0


def test_step_fires_one_event():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(1.0, lambda: fired.append(1))
    engine.schedule_at(2.0, lambda: fired.append(2))
    assert engine.step()
    assert fired == [1]
    assert engine.step()
    assert not engine.step()


def test_reset_rewinds_clock_and_queue():
    engine = SimulationEngine()
    engine.schedule_at(1.0, lambda: None)
    engine.run()
    engine.reset()
    assert engine.now == 0.0
    assert engine.pending == 0
    assert engine.events_processed == 0
    engine.schedule_at(0.5, lambda: None)  # past-of-old-clock is fine now
    engine.run()
    assert engine.now == 0.5


def test_reentrant_run_rejected():
    engine = SimulationEngine()

    def recurse():
        engine.run()

    engine.schedule_at(1.0, recurse)
    with pytest.raises(SimulationError):
        engine.run()


def test_events_processed_counter():
    engine = SimulationEngine()
    for t in (1.0, 2.0, 3.0):
        engine.schedule_at(t, lambda: None)
    engine.run()
    assert engine.events_processed == 3


def test_simultaneous_events_fifo():
    engine = SimulationEngine()
    fired = []
    for i in range(5):
        engine.schedule_at(7.0, (lambda j: lambda: fired.append(j))(i))
    engine.run()
    assert fired == [0, 1, 2, 3, 4]
