"""Unit tests for named random streams."""

import numpy as np

from repro.sim.rng import RandomStreams


def test_same_name_returns_same_generator():
    streams = RandomStreams(seed=1)
    assert streams.get("a") is streams.get("a")


def test_same_seed_reproduces_sequences():
    first = RandomStreams(seed=42).get("steps").normal(size=100)
    second = RandomStreams(seed=42).get("steps").normal(size=100)
    np.testing.assert_array_equal(first, second)


def test_different_names_are_independent():
    streams = RandomStreams(seed=42)
    a = streams.get("a").normal(size=100)
    b = streams.get("b").normal(size=100)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").normal(size=50)
    b = RandomStreams(seed=2).get("x").normal(size=50)
    assert not np.allclose(a, b)


def test_consuming_one_stream_does_not_shift_another():
    streams = RandomStreams(seed=9)
    expected = RandomStreams(seed=9).get("b").normal(size=10)
    streams.get("a").normal(size=1000)  # burn variates on another stream
    np.testing.assert_array_equal(streams.get("b").normal(size=10), expected)


def test_fork_is_deterministic_and_distinct():
    base = RandomStreams(seed=5)
    fork1 = base.fork(1)
    fork1_again = RandomStreams(seed=5).fork(1)
    assert fork1.seed == fork1_again.seed
    assert fork1.seed != base.seed
    assert base.fork(2).seed != fork1.seed


def test_seed_property():
    assert RandomStreams(seed=17).seed == 17
