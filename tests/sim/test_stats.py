"""Unit tests for the statistics collectors."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Counter, Tally, TimeWeightedStat


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().count == 0

    def test_increment(self):
        counter = Counter("updates")
        counter.increment()
        counter.increment(4)
        assert counter.count == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)

    def test_reset(self):
        counter = Counter()
        counter.increment(3)
        counter.reset()
        assert counter.count == 0


class TestTally:
    def test_single_value(self):
        tally = Tally()
        tally.record(4.0)
        assert tally.mean == 4.0
        assert tally.variance == 0.0
        assert tally.minimum == 4.0
        assert tally.maximum == 4.0

    def test_matches_numpy_moments(self):
        values = [3.0, 1.5, -2.0, 8.25, 0.0, 4.5]
        tally = Tally()
        for value in values:
            tally.record(value)
        assert tally.mean == pytest.approx(np.mean(values))
        assert tally.variance == pytest.approx(np.var(values, ddof=1))
        assert tally.minimum == min(values)
        assert tally.maximum == max(values)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_welford_agrees_with_numpy(self, values):
        tally = Tally()
        for value in values:
            tally.record(value)
        assert tally.count == len(values)
        assert tally.mean == pytest.approx(np.mean(values), abs=1e-6)
        assert tally.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-6, abs=1e-6
        )

    def test_summary_snapshot(self):
        tally = Tally("sizes")
        tally.record(1.0)
        tally.record(3.0)
        summary = tally.summary()
        assert summary.count == 2
        assert summary.mean == 2.0
        assert summary.std == pytest.approx(math.sqrt(2.0))

    def test_reset(self):
        tally = Tally("x")
        tally.record(1.0)
        tally.reset()
        assert tally.count == 0
        assert tally.name == "x"


class TestTimeWeightedStat:
    def test_constant_level(self):
        stat = TimeWeightedStat()
        stat.record(0.0, 5.0)
        assert stat.mean(10.0) == 5.0

    def test_two_levels_weighted_by_duration(self):
        stat = TimeWeightedStat()
        stat.record(0.0, 0.0)
        stat.record(6.0, 10.0)
        # 0 for 6 units, 10 for 4 units over [0, 10].
        assert stat.mean(10.0) == pytest.approx(4.0)

    def test_before_first_record_is_zero(self):
        assert TimeWeightedStat().mean(5.0) == 0.0

    def test_time_going_backwards_rejected(self):
        stat = TimeWeightedStat()
        stat.record(5.0, 1.0)
        with pytest.raises(ValueError):
            stat.record(4.0, 2.0)

    def test_mean_at_start_time_is_zero(self):
        stat = TimeWeightedStat()
        stat.record(3.0, 7.0)
        assert stat.mean(3.0) == 0.0
