"""Unit tests for per-query filter slots at shared sources."""

import math

import numpy as np
import pytest

from repro.multiquery.coordinator import MultiQueryCoordinator
from repro.streams.filters import FilterConstraint


@pytest.fixture
def system():
    coordinator = MultiQueryCoordinator()
    coordinator.attach_sources(np.array([5.0, 15.0]))
    received = []
    # Intercept deliveries without full protocols.
    coordinator._dispatch = lambda sid, v, t, flipped: received.append(
        (sid, v, flipped)
    )
    return coordinator, received


class TestSlots:
    def test_update_flips_only_affected_queries(self, system):
        coordinator, received = system
        source = coordinator.sources[0]  # value 5.0
        source.install("a", FilterConstraint(0.0, 10.0), None, 0.0)
        source.install("b", FilterConstraint(7.0, 20.0), None, 0.0)
        # 5 -> 8: enters b's range, stays in a's.
        source.apply_value(8.0, 1.0)
        assert received == [(0, 8.0, ["b"])]
        received.clear()
        # 8 -> 12: leaves a's range, stays in b's.
        source.apply_value(12.0, 2.0)
        assert received == [(0, 12.0, ["a"])]

    def test_single_physical_update_for_multi_flip(self, system):
        coordinator, received = system
        source = coordinator.sources[0]
        source.install("a", FilterConstraint(0.0, 10.0), None, 0.0)
        source.install("b", FilterConstraint(0.0, 10.0), None, 0.0)
        source.apply_value(50.0, 1.0)  # leaves both at once
        assert len(received) == 1
        assert sorted(received[0][2]) == ["a", "b"]
        assert coordinator.shared_updates == 1

    def test_silenced_slot_never_flips(self, system):
        coordinator, received = system
        source = coordinator.sources[0]
        source.install(
            "a", FilterConstraint(-math.inf, math.inf), None, 0.0
        )
        source.apply_value(1e9, 1.0)
        assert received == []

    def test_no_slots_means_no_filter(self, system):
        coordinator, received = system
        coordinator.sources[1].apply_value(99.0, 1.0)
        assert received == [(1, 99.0, None)]

    def test_probe_resyncs_only_that_query(self, system):
        coordinator, received = system
        source = coordinator.sources[0]
        source.install("a", FilterConstraint(0.0, 10.0), None, 0.0)
        source.install("b", FilterConstraint(0.0, 10.0), None, 0.0)
        # Value drifts out; suppose a's protocol learned via probe.
        source.value = 12.0  # bypass apply to simulate missed state
        source._reported_inside["a"] = True
        source._reported_inside["b"] = True
        assert source.probe("a") == 12.0
        assert source._reported_inside["a"] is False  # resynced
        assert source._reported_inside["b"] is True   # untouched

    def test_stale_install_belief_self_corrects(self, system):
        coordinator, received = system
        source = coordinator.sources[0]  # value 5.0, inside [0, 10]
        source.install(
            "a", FilterConstraint(0.0, 10.0), False, 1.0  # wrong belief
        )
        assert received == [(0, 5.0, ["a"])]

    def test_slot_lookup(self, system):
        coordinator, _ = system
        source = coordinator.sources[0]
        constraint = FilterConstraint(0.0, 1.0)
        source.install("a", constraint, None, 0.0)
        assert source.slot("a") == constraint
        assert source.slot("zzz") is None
