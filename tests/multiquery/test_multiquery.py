"""Tests for the multi-query extension (shared sources, per-query slots)."""

import numpy as np
import pytest

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.multiquery.coordinator import MultiQueryCoordinator
from repro.multiquery.runner import run_multi_query
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.protocols.rtp import RankToleranceProtocol
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.queries.knn import KnnQuery
from repro.queries.range_query import RangeQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

CHECKED = RunConfig(check_every=1, strict=True)


@pytest.fixture(scope="module")
def trace():
    return generate_synthetic_trace(
        SyntheticConfig(n_streams=150, horizon=250.0, seed=4)
    )


def make_queries(tolerances):
    """One FT-NRP (or ZT-NRP) per tolerance, all over [400, 600]."""
    queries = {}
    for i, eps in enumerate(tolerances):
        query = RangeQuery(400.0, 600.0)
        if eps == 0.0:
            queries[f"user{i}"] = (ZeroToleranceRangeProtocol(query), query, None)
        else:
            tolerance = FractionTolerance(eps, eps)
            queries[f"user{i}"] = (
                FractionToleranceRangeProtocol(query, tolerance),
                query,
                tolerance,
            )
    return queries


class TestCorrectness:
    def test_every_query_within_tolerance(self, trace):
        result = run_multi_query(
            trace, make_queries([0.0, 0.2, 0.4]), config=CHECKED
        )
        assert result.tolerance_ok
        assert set(result.answers) == {"user0", "user1", "user2"}

    def test_mixed_query_classes(self, trace):
        range_query = RangeQuery(400.0, 600.0)
        range_tol = FractionTolerance(0.25, 0.25)
        knn_query = KnnQuery(500.0, 6)
        knn_tol = RankTolerance(k=6, r=4)
        result = run_multi_query(
            trace,
            {
                "zone": (
                    FractionToleranceRangeProtocol(range_query, range_tol),
                    range_query,
                    range_tol,
                ),
                "nearest": (
                    RankToleranceProtocol(knn_query, knn_tol),
                    knn_query,
                    knn_tol,
                ),
            },
            config=CHECKED,
        )
        assert result.tolerance_ok
        assert len(result.answers["nearest"]) == 6

    def test_solo_equivalence_of_answers(self, trace):
        """A protocol behind the facade ends with the same answer as a
        solo run on the same trace."""
        query = RangeQuery(400.0, 600.0)
        tolerance = FractionTolerance(0.2, 0.2)
        solo = run_protocol(
            trace,
            FractionToleranceRangeProtocol(query, tolerance),
            tolerance=tolerance,
        )
        shared = run_multi_query(trace, make_queries([0.2]))
        assert shared.answers["user0"] == solo.final_answer
        assert shared.maintenance_messages == solo.maintenance_messages


class TestSharing:
    def test_identical_queries_share_updates(self, trace):
        shared = run_multi_query(trace, make_queries([0.0, 0.0, 0.0]))
        solo = run_protocol(
            trace, ZeroToleranceRangeProtocol(RangeQuery(400.0, 600.0))
        )
        # Identical filters flip together: one physical update serves all
        # three queries, so total update cost equals one solo run's.
        assert shared.shared_updates == solo.maintenance_messages
        assert shared.sharing_factor == pytest.approx(3.0)

    def test_shared_beats_independent_deployments(self, trace):
        tolerances = [0.0, 0.1, 0.2, 0.4]
        shared = run_multi_query(trace, make_queries(tolerances))
        independent = 0
        for _, (protocol, query, tolerance) in make_queries(tolerances).items():
            independent += run_protocol(
                trace, protocol, tolerance=tolerance
            ).maintenance_messages
        assert shared.maintenance_messages < independent

    def test_disjoint_ranges_share_little(self):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=100, horizon=200.0, seed=8)
        )
        queries = {}
        for i, (low, high) in enumerate([(100, 250), (450, 550), (800, 950)]):
            query = RangeQuery(float(low), float(high))
            queries[f"q{i}"] = (ZeroToleranceRangeProtocol(query), query, None)
        result = run_multi_query(trace, queries, config=CHECKED)
        assert result.tolerance_ok
        assert result.sharing_factor < 1.2


class TestCoordinator:
    def test_duplicate_query_id_rejected(self):
        coordinator = MultiQueryCoordinator()
        coordinator.attach_sources(np.array([1.0]))
        query = RangeQuery(0.0, 1.0)
        coordinator.register("a", ZeroToleranceRangeProtocol(query))
        with pytest.raises(ValueError):
            coordinator.register("a", ZeroToleranceRangeProtocol(query))

    def test_context_mirrors_server_api(self):
        coordinator = MultiQueryCoordinator()
        coordinator.attach_sources(np.array([5.0, 15.0]))
        query = RangeQuery(0.0, 10.0)
        context = coordinator.register("a", ZeroToleranceRangeProtocol(query))
        assert context.n_streams == 2
        assert context.stream_ids == [0, 1]
        assert context.probe(1) == 15.0
        assert context.probe_all() == {0: 5.0, 1: 15.0}

    def test_unfiltered_source_notifies_every_query(self):
        """Before any filter is installed, updates fan out to all."""
        trace = StreamTrace(
            initial_values=np.array([500.0] * 5),
            times=np.array([1.0]),
            stream_ids=np.array([0]),
            values=np.array([100.0]),
            horizon=2.0,
        )
        coordinator = MultiQueryCoordinator()
        coordinator.attach_sources(trace.initial_values)
        seen = []

        class Spy(ZeroToleranceRangeProtocol):
            def initialize(self, server):
                pass  # no filters installed

            def on_update(self, server, stream_id, value, time):
                seen.append((self.name, stream_id))

        coordinator.register("a", Spy(RangeQuery(0, 1)))
        coordinator.register("b", Spy(RangeQuery(0, 1)))
        coordinator.initialize_all()
        coordinator.sources[0].apply_value(100.0, 1.0)
        assert len(seen) == 2
