"""Shared fixtures: small deterministic workloads and wired systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.accounting import MessageLedger
from repro.network.channel import Channel
from repro.streams.source import StreamSource
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.streams.trace import StreamTrace


@pytest.fixture
def small_trace() -> StreamTrace:
    """100 streams, ~1000 records — fast enough for strict checking."""
    return generate_synthetic_trace(
        SyntheticConfig(n_streams=100, horizon=200.0, seed=7)
    )


@pytest.fixture
def tiny_trace() -> StreamTrace:
    """20 streams, a few hundred records — for the most exhaustive tests."""
    return generate_synthetic_trace(
        SyntheticConfig(n_streams=20, horizon=150.0, seed=3)
    )


@pytest.fixture
def manual_trace() -> StreamTrace:
    """A hand-written 4-stream trace with known crossings of [10, 20]."""
    return StreamTrace(
        initial_values=np.array([5.0, 15.0, 25.0, 12.0]),
        times=np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
        stream_ids=np.array([0, 1, 2, 0, 3]),
        values=np.array([12.0, 30.0, 18.0, 4.0, 13.0]),
        horizon=10.0,
        metadata={"workload": "manual"},
    )


@pytest.fixture
def wired_channel():
    """A channel with a ledger and three sources, plus a message sink.

    Returns ``(channel, ledger, sources, received)`` where *received*
    collects every message delivered to the "server" side.
    """
    ledger = MessageLedger()
    channel = Channel(ledger)
    received: list = []
    channel.bind_server(received.append)
    sources = [
        StreamSource(stream_id, float(10 * stream_id), channel)
        for stream_id in range(3)
    ]
    return channel, ledger, sources, received
