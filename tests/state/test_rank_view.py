"""Unit + randomized tests for incremental rank maintenance."""

import numpy as np
import pytest

from repro.queries.knn import KMinQuery, KnnQuery, TopKQuery
from repro.state.rank import RankView
from repro.state.table import StreamStateTable


def legacy_order(query, values):
    """The seed's dict + python-sorted rank derivation."""
    known = {i: float(v) for i, v in enumerate(values)}
    return sorted(known, key=lambda i: (query.distance(known[i]), i))


def make_view(query, values):
    table = StreamStateTable(len(values))
    table.record_report_bulk(np.asarray(values, dtype=np.float64), 0.0)
    return table, RankView(table, query.distance_array)


@pytest.mark.parametrize(
    "query", [KnnQuery(q=50.0, k=3), TopKQuery(k=3), KMinQuery(k=3)]
)
def test_bulk_order_matches_legacy_sorted(query):
    rng = np.random.default_rng(3)
    values = rng.normal(50.0, 20.0, size=64)
    _, view = make_view(query, values)
    assert view.order() == legacy_order(query, values)


def test_ties_break_by_stream_id():
    # Streams 1 and 3 are equidistant from q; id order must win.
    query = KnnQuery(q=10.0, k=2)
    values = [0.0, 12.0, 30.0, 8.0, 10.0]
    _, view = make_view(query, values)
    assert view.order() == [4, 1, 3, 0, 2]
    assert view.leaders(3) == [4, 1, 3]


def test_leaders_partial_selection_matches_full_order():
    query = TopKQuery(k=5)
    rng = np.random.default_rng(11)
    values = rng.normal(0.0, 100.0, size=500)
    _, view = make_view(query, values)
    expected = legacy_order(query, values)
    # all-dirty: leaders goes through the argpartition path.
    assert view.leaders(6) == expected[:6]
    assert view.leaders(0) == []
    # count beyond the population falls back to the full sort.
    table2, view2 = make_view(query, values[:4])
    assert view2.leaders(10) == legacy_order(query, values[:4])


def test_dirty_region_repair_matches_resort():
    query = KnnQuery(q=500.0, k=4)
    rng = np.random.default_rng(7)
    values = rng.normal(500.0, 100.0, size=200)
    table, view = make_view(query, values)
    view.order()  # settle
    known = {i: float(v) for i, v in enumerate(values)}
    for step in range(50):
        sid = int(rng.integers(0, len(values)))
        new = float(rng.normal(500.0, 150.0))
        table.record_report(sid, new, float(step))
        known[sid] = new
        if step % 3 == 0:  # read at varying dirty-batch sizes
            assert view.order() == sorted(
                known, key=lambda i: (query.distance(known[i]), i)
            )
    assert view.order() == sorted(
        known, key=lambda i: (query.distance(known[i]), i)
    )


def test_repair_with_duplicate_keys():
    """Dirty repair must honour id tie-breaks among equal keys."""
    query = KMinQuery(k=2)
    values = [5.0, 5.0, 5.0, 1.0, 9.0]
    table, view = make_view(query, values)
    view.order()
    table.record_report(4, 5.0, 1.0)  # now four streams tied at 5.0
    assert view.order() == [3, 0, 1, 2, 4]
    table.record_report(0, 5.0, 2.0)  # rewrite with the same key
    assert view.order() == [3, 0, 1, 2, 4]


def test_large_dirty_fraction_triggers_rebuild():
    query = KMinQuery(k=2)
    rng = np.random.default_rng(5)
    values = rng.normal(0.0, 10.0, size=40)
    table, view = make_view(query, values)
    view.order()
    known = {i: float(v) for i, v in enumerate(values)}
    for sid in range(20):  # half the population: exceeds the repair budget
        new = float(rng.normal(0.0, 10.0))
        table.record_report(sid, new, 1.0)
        known[sid] = new
    assert view.order() == sorted(
        known, key=lambda i: (query.distance(known[i]), i)
    )


def test_partial_known_population():
    query = KMinQuery(k=1)
    table = StreamStateTable(6)
    for sid, value in [(4, 3.0), (1, 7.0), (5, 1.0)]:
        table.record_report(sid, value, 0.0)
    view = RankView(table, query.distance_array)
    assert view.order() == [5, 4, 1]
    assert view.leaders(2) == [5, 4]
    table.record_report(0, 2.0, 1.0)  # newly known stream joins the order
    assert view.order() == [5, 0, 4, 1]


def test_key_of_matches_query_distance():
    query = KnnQuery(q=10.0, k=1)
    table, view = make_view(query, [4.0, 18.0])
    assert view.key_of(0) == query.distance(4.0)
    assert view.key_of(1) == query.distance(18.0)
