"""Unit tests for the silencer pools and their flag mirroring."""

from repro.state.pools import SilencerPools
from repro.state.table import (
    SILENCER_FN,
    SILENCER_FP,
    SILENCER_NONE,
    StreamStateTable,
)


def test_fifo_order_preserved():
    pools = SilencerPools()
    pools.reset([3, 1, 2], [7, 5])
    assert pools.pop_fp() == 3
    assert pools.pop_fp() == 1
    pools.push_fp(9)
    assert list(pools.fp) == [2, 9]
    assert pools.pop_fn() == 7
    assert pools.n_plus == 2 and pools.n_minus == 1


def test_flags_mirror_into_table():
    table = StreamStateTable(6)
    pools = SilencerPools(table)
    pools.reset([0, 1], [2])
    assert table.silencer_of(0) == SILENCER_FP
    assert table.silencer_of(2) == SILENCER_FN
    assert table.silencer_of(3) == SILENCER_NONE
    moved = pools.pop_fp()
    pools.push_fn(moved)  # the FT-NRP limbo move: FP pool -> FN pool
    assert table.silencer_of(moved) == SILENCER_FN
    pools.pop_fn()  # 2 leaves first (FIFO)
    assert table.silencer_of(2) == SILENCER_NONE
    assert table.silencer_of(moved) == SILENCER_FN


def test_reset_clears_stale_flags():
    table = StreamStateTable(4)
    pools = SilencerPools(table)
    pools.reset([0], [1])
    pools.reset([2], [])
    assert table.silencer_of(0) == SILENCER_NONE
    assert table.silencer_of(1) == SILENCER_NONE
    assert table.silencer_of(2) == SILENCER_FP


def test_late_binding_syncs_flags():
    pools = SilencerPools()
    pools.reset([1], [3])
    table = StreamStateTable(5)
    pools.bind(table)
    assert table.silencer_of(1) == SILENCER_FP
    assert table.silencer_of(3) == SILENCER_FN
