"""Disk-backed planes: ``storage="mmap"`` equivalence and limits.

The durability tier swaps the table's numpy planes for ``np.memmap``
files so 1M+-stream populations fit without RAM-resident state.  The
contract: the backing is invisible to every consumer — same mutation
API, same shard aliasing, same run results — and explicitly refused
where it cannot hold (object-dtype container columns).
"""

import os
import pickle

import numpy as np
import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.queries.range_query import RangeQuery
from repro.runtime.session import ExecutionSession
from repro.state.sharding import (
    StateShardView,
    shard_ranges,
    validate_shard_alignment,
)
from repro.state.table import StateTableFactory, StreamStateTable


def _mmap_table(tmp_path, n=16) -> StreamStateTable:
    return StreamStateTable(
        n, storage="mmap", plane_dir=str(tmp_path / "planes")
    )


def test_mmap_requires_a_plane_dir():
    with pytest.raises(ValueError, match="plane_dir"):
        StreamStateTable(4, storage="mmap")


def test_planes_live_on_disk(tmp_path):
    table = _mmap_table(tmp_path)
    assert table.storage == "mmap"
    assert isinstance(table.values, np.memmap)
    on_disk = sorted(os.listdir(table.plane_dir))
    assert "values.npy" in on_disk and "lower.npy" in on_disk

    table.record_report(3, 42.0, time=1.0)
    table.record_deploy(3, 40.0, 45.0)
    table.flush_planes()
    # The flushed file holds the mutation — readable by a fresh map.
    reread = np.load(
        os.path.join(table.plane_dir, "values.npy"), mmap_mode="r"
    )
    assert reread[3] == 42.0


def test_mutation_api_matches_ram_backing(tmp_path):
    ram = StreamStateTable(8)
    disk = _mmap_table(tmp_path, 8)
    for table in (ram, disk):
        table.record_report_bulk(np.arange(8, dtype=np.float64), time=0.0)
        table.record_deploy(2, 1.0, 3.0)
        table.answer_add(2)
        table.record_report(5, -1.0, time=2.0)
    np.testing.assert_array_equal(ram.values, np.asarray(disk.values))
    np.testing.assert_array_equal(ram.lower, np.asarray(disk.lower))
    np.testing.assert_array_equal(
        ram.answer_mask, np.asarray(disk.answer_mask)
    )
    assert ram.answer_size == disk.answer_size == 1
    assert disk.bounds_of(2) == (1.0, 3.0)


def test_shard_views_alias_mmap_parent(tmp_path):
    parent = _mmap_table(tmp_path, 10)
    shards = [
        StateShardView(parent, lo, hi) for lo, hi in shard_ranges(10, 3)
    ]
    validate_shard_alignment(parent, shards)
    shards[1].record_report(0, 7.0, time=1.0)  # local row 0 of shard 1
    assert parent.values[shards[1].lo] == 7.0


def test_container_column_refused_under_mmap(tmp_path):
    table = _mmap_table(tmp_path)
    with pytest.raises(ValueError, match="mmap"):
        table.record_container_deploy(0, object())


def test_pickle_converts_planes_to_ram(tmp_path):
    """Snapshots must not capture live memmaps: a crashed run's plane
    files may be ahead of the journal, so pickling materializes RAM
    copies and the clone reports ``storage == "ram"``."""
    table = _mmap_table(tmp_path, 6)
    table.record_report(4, 9.0, time=3.0)
    clone = pickle.loads(pickle.dumps(table))
    assert clone.storage == "ram"
    assert clone.plane_dir is None
    assert not isinstance(clone.values, np.memmap)
    assert clone.values[4] == 9.0
    # Independent copies: mutating the clone leaves the original alone.
    clone.values[4] = 0.0
    assert table.values[4] == 9.0


def test_factory_is_picklable_and_threads_storage(tmp_path):
    factory = StateTableFactory(
        storage="mmap", plane_dir=str(tmp_path / "planes")
    )
    rebuilt = pickle.loads(pickle.dumps(factory))
    table = rebuilt(5)
    assert table.storage == "mmap"
    assert table.n_streams == 5
    assert StateTableFactory()(5).storage == "ram"


def test_session_runs_identically_over_mmap(tmp_path):
    """Full protocol run: mmap-backed planes produce the same ledger
    and answer as RAM-backed, single and sharded."""
    spec = QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))
    workload = Workload.synthetic(n_streams=80, horizon=150.0, seed=11)
    trace = workload.materialize()
    baseline = Engine().run(spec, workload, Deployment.single())

    for build in ("single", "sharded"):
        factory = StateTableFactory(
            storage="mmap", plane_dir=str(tmp_path / f"planes_{build}")
        )
        if build == "single":
            session = ExecutionSession.for_streams(
                trace, spec.build(), state_factory=factory
            )
        else:
            session = ExecutionSession.for_streams_sharded(
                trace, spec.build(), 2, state_factory=factory
            )
        session.initialize(time=0.0)
        session.replay(
            trace.times, trace.stream_ids, trace.values, horizon=trace.horizon
        )
        assert session.snapshot() == baseline.ledger
        assert session.host.state.storage == "mmap"
