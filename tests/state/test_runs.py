"""Property tests for the dispatch kernel's run primitives.

The kernel's soundness rests on three array facts (DESIGN.md §9), each
pinned here against a naive scalar oracle over hypothesis-generated
chunks:

* run segmentation partitions the chunk exactly — every position in
  exactly one run, ascending (time-ordered) within each run;
* ``first_true_per_run`` equals a Python loop over each run's mask;
* the cumulative-extrema first-crossing equals both the elementwise
  mask formulation and the per-event ``run_flip_index`` oracle the
  membership layer defines.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.membership import run_flip_index
from repro.state.runs import (
    first_interval_crossing,
    first_true_per_run,
    segment_runs,
    segmented_cummax,
    segmented_cummin,
)

MAX_STREAM = 7


@st.composite
def chunks(draw):
    """A chunk of stream ids with parallel float payloads."""
    n = draw(st.integers(0, 60))
    ids = draw(
        st.lists(
            st.integers(0, MAX_STREAM), min_size=n, max_size=n
        )
    )
    values = draw(
        st.lists(
            st.floats(-100.0, 100.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(ids, dtype=np.int64), np.asarray(values)


@st.composite
def bounds_per_run(draw, n_runs):
    """Closed (possibly empty or unbounded) intervals, one per run."""
    lower = draw(
        st.lists(
            st.floats(-120.0, 120.0, allow_nan=False),
            min_size=n_runs,
            max_size=n_runs,
        )
    )
    width = draw(
        st.lists(
            st.floats(0.0, 200.0, allow_nan=False),
            min_size=n_runs,
            max_size=n_runs,
        )
    )
    lower = np.asarray(lower)
    return lower, lower + np.asarray(width)


@given(chunks())
@settings(max_examples=200, deadline=None)
def test_segmentation_partitions_the_chunk_exactly(chunk):
    ids, _ = chunk
    order, starts, run_ids = segment_runs(ids)
    # Every position appears in exactly one run.
    assert sorted(order.tolist()) == list(range(len(ids)))
    assert starts[0] == 0 and starts[-1] == len(ids)
    assert len(run_ids) == len(starts) - 1
    covered = []
    for r in range(len(run_ids)):
        run = order[starts[r] : starts[r + 1]]
        assert len(run) > 0
        # One stream per run, ascending positions (stable = time order).
        assert (ids[run] == run_ids[r]).all()
        assert (np.diff(run) > 0).all() if len(run) > 1 else True
        covered.extend(run.tolist())
    assert sorted(covered) == list(range(len(ids)))
    # Runs are maximal: distinct runs carry distinct stream ids.
    assert len(set(run_ids.tolist())) == len(run_ids)


@given(chunks(), st.data())
@settings(max_examples=200, deadline=None)
def test_first_true_per_run_matches_scalar_loop(chunk, data):
    ids, _ = chunk
    order, starts, run_ids = segment_runs(ids)
    mask = np.asarray(
        data.draw(
            st.lists(
                st.booleans(), min_size=len(ids), max_size=len(ids)
            )
        ),
        dtype=bool,
    )
    grouped = mask[order]
    first = first_true_per_run(grouped, starts)
    for r in range(len(run_ids)):
        lo, hi = int(starts[r]), int(starts[r + 1])
        expected = next(
            (g for g in range(lo, hi) if grouped[g]), -1
        )
        assert first[r] == expected


@given(chunks(), st.data())
@settings(max_examples=200, deadline=None)
def test_interval_crossing_equals_elementwise_and_flip_oracle(chunk, data):
    ids, values = chunk
    order, starts, run_ids = segment_runs(ids)
    lower, upper = data.draw(bounds_per_run(len(run_ids)))
    grouped = values[order]

    by_extrema = first_interval_crossing(grouped, starts, lower, upper)

    counts = np.diff(starts)
    lower_g = np.repeat(lower, counts)
    upper_g = np.repeat(upper, counts)
    outside = (grouped < lower_g) | (grouped > upper_g)
    by_mask = first_true_per_run(outside, starts)
    assert (by_extrema == by_mask).all()

    # Both agree with the membership layer's per-event oracle for a
    # believed-inside stream (the quiescence-row contract).
    for r in range(len(run_ids)):
        lo, hi = int(starts[r]), int(starts[r + 1])
        flip = run_flip_index(
            [(float(lower[r]), float(upper[r]), True)], grouped[lo:hi]
        )
        expected = -1 if flip is None else lo + flip
        assert by_extrema[r] == expected


@given(chunks(), st.data())
@settings(max_examples=100, deadline=None)
def test_segmented_extrema_match_per_run_accumulate(chunk, data):
    ids, values = chunk
    order, starts, _ = segment_runs(ids)
    grouped = values[order]
    cummin = segmented_cummin(grouped, starts)
    cummax = segmented_cummax(grouped, starts)
    for r in range(len(starts) - 1):
        lo, hi = int(starts[r]), int(starts[r + 1])
        run = grouped[lo:hi]
        assert (cummin[lo:hi] == np.minimum.accumulate(run)).all()
        assert (cummax[lo:hi] == np.maximum.accumulate(run)).all()


def test_empty_chunk_degenerates_cleanly():
    order, starts, run_ids = segment_runs(np.asarray([], dtype=np.int64))
    assert len(order) == 0 and len(run_ids) == 0
    assert starts.tolist() == [0]
    assert len(first_true_per_run(np.asarray([], dtype=bool), starts)) == 0


def test_unbatchable_source_flips_immediately():
    """rows=None (no quiescence info) must flip at index 0."""
    assert run_flip_index(None, np.asarray([1.0])) == 0
    assert run_flip_index(None, np.asarray([])) is None
