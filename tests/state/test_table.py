"""Unit tests for the columnar stream-state table."""

import math

import numpy as np
import pytest

from repro.state.table import (
    SILENCER_FN,
    SILENCER_FP,
    SILENCER_NONE,
    StreamStateTable,
)


class TestValuePlane:
    def test_record_report_updates_columns(self):
        table = StreamStateTable(4)
        assert table.known_count == 0
        table.record_report(2, 7.5, 3.0)
        assert table.values[2] == 7.5
        assert table.report_time[2] == 3.0
        assert table.known[2]
        assert table.known_count == 1
        assert list(table.known_ids()) == [2]

    def test_record_report_accepts_numpy_ids(self):
        table = StreamStateTable(3)
        table.record_report(np.int64(1), 2.0, 0.0)
        assert table.known[1]

    def test_bulk_ingest_marks_all_known(self):
        table = StreamStateTable(3)
        table.record_report_bulk(np.array([1.0, 2.0, 3.0]), 5.0)
        assert table.known_count == 3
        assert list(table.values) == [1.0, 2.0, 3.0]
        assert all(table.report_time == 5.0)

    def test_vector_payload_allocates_points(self):
        table = StreamStateTable(2)
        table.record_report(0, np.array([1.0, 2.0]), 0.0)
        assert table.points is not None
        assert table.points.shape == (2, 2)
        assert table.payload_array() is table.points
        assert list(table.value_of(0)) == [1.0, 2.0]

    def test_scalar_payload_array_is_values(self):
        table = StreamStateTable(2)
        assert table.payload_array() is table.values


class TestConstraintPlane:
    def test_record_deploy_and_filter_writethrough(self):
        table = StreamStateTable(2)
        assert not table.scannable[0]
        table.record_deploy(0, 1.0, 9.0)
        assert table.bounds_of(0) == (1.0, 9.0)
        assert table.scannable[0]
        table.set_filter(0, 1.0, 9.0, True)
        assert table.inside[0]
        table.set_inside(0, False)
        assert not table.inside[0]
        table.clear_filter(0)
        assert not table.scannable[0]
        assert table.lower[0] == -math.inf and table.upper[0] == math.inf


class TestMembershipPlanes:
    def test_answer_ops_track_size(self):
        table = StreamStateTable(5)
        table.answer_add(1)
        table.answer_add(1)  # idempotent
        table.answer_add(np.int64(3))
        assert table.answer_size == 2
        assert table.answer_contains(3)
        table.answer_discard(np.int64(3))
        table.answer_discard(3)  # idempotent
        assert table.answer_size == 1
        assert table.answer_snapshot() == frozenset({1})

    def test_answer_replace_and_mask(self):
        table = StreamStateTable(4)
        table.answer_replace([0, 2])
        assert table.answer_snapshot() == frozenset({0, 2})
        table.answer_set_mask(np.array([False, True, False, True]))
        assert table.answer_snapshot() == frozenset({1, 3})
        assert table.answer_size == 2

    def test_tracked_ops_and_difference(self):
        table = StreamStateTable(5)
        table.tracked_replace([0, 1, 2])
        table.answer_replace([0, 2])
        assert table.tracked_size == 3
        assert list(table.tracked_not_in_answer()) == [1]
        table.tracked_discard(1)
        assert table.tracked_snapshot() == frozenset({0, 2})

    def test_silencer_flags(self):
        table = StreamStateTable(3)
        table.set_silencer(0, SILENCER_FP)
        table.set_silencer(1, SILENCER_FN)
        assert table.silencer_of(0) == SILENCER_FP
        assert table.silencer_of(1) == SILENCER_FN
        table.clear_silencers()
        assert table.silencer_of(0) == SILENCER_NONE


class TestListeners:
    def test_listeners_notified_per_report(self):
        table = StreamStateTable(3)
        notes = []

        class Spy:
            def note(self, stream_id):
                notes.append(stream_id)

            def invalidate(self):
                notes.append("all")

        spy = Spy()
        table.add_listener(spy)
        table.add_listener(spy)  # idempotent
        table.record_report(1, 5.0, 0.0)
        table.record_report_bulk(np.zeros(3), 1.0)
        assert notes == [1, "all"]
        table.remove_listener(spy)
        table.record_report(0, 2.0, 2.0)
        assert notes == [1, "all"]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            StreamStateTable(-1)
