"""Unit tests for the columnar stream-state table."""

import math

import numpy as np
import pytest

from repro.state.table import (
    SILENCER_FN,
    SILENCER_FP,
    SILENCER_NONE,
    StreamStateTable,
)


class TestValuePlane:
    def test_record_report_updates_columns(self):
        table = StreamStateTable(4)
        assert table.known_count == 0
        table.record_report(2, 7.5, 3.0)
        assert table.values[2] == 7.5
        assert table.report_time[2] == 3.0
        assert table.known[2]
        assert table.known_count == 1
        assert list(table.known_ids()) == [2]

    def test_record_report_accepts_numpy_ids(self):
        table = StreamStateTable(3)
        table.record_report(np.int64(1), 2.0, 0.0)
        assert table.known[1]

    def test_bulk_ingest_marks_all_known(self):
        table = StreamStateTable(3)
        table.record_report_bulk(np.array([1.0, 2.0, 3.0]), 5.0)
        assert table.known_count == 3
        assert list(table.values) == [1.0, 2.0, 3.0]
        assert all(table.report_time == 5.0)

    def test_vector_payload_allocates_points(self):
        table = StreamStateTable(2)
        table.record_report(0, np.array([1.0, 2.0]), 0.0)
        assert table.points is not None
        assert table.points.shape == (2, 2)
        assert table.payload_array() is table.points
        assert list(table.value_of(0)) == [1.0, 2.0]

    def test_scalar_payload_array_is_values(self):
        table = StreamStateTable(2)
        assert table.payload_array() is table.values


class TestConstraintPlane:
    def test_record_deploy_and_filter_writethrough(self):
        table = StreamStateTable(2)
        assert not table.scannable[0]
        table.record_deploy(0, 1.0, 9.0)
        assert table.bounds_of(0) == (1.0, 9.0)
        assert table.scannable[0]
        table.set_filter(0, 1.0, 9.0, True)
        assert table.inside[0]
        table.set_inside(0, False)
        assert not table.inside[0]
        table.clear_filter(0)
        assert not table.scannable[0]
        assert table.lower[0] == -math.inf and table.upper[0] == math.inf


class TestMembershipPlanes:
    def test_answer_ops_track_size(self):
        table = StreamStateTable(5)
        table.answer_add(1)
        table.answer_add(1)  # idempotent
        table.answer_add(np.int64(3))
        assert table.answer_size == 2
        assert table.answer_contains(3)
        table.answer_discard(np.int64(3))
        table.answer_discard(3)  # idempotent
        assert table.answer_size == 1
        assert table.answer_snapshot() == frozenset({1})

    def test_answer_replace_and_mask(self):
        table = StreamStateTable(4)
        table.answer_replace([0, 2])
        assert table.answer_snapshot() == frozenset({0, 2})
        table.answer_set_mask(np.array([False, True, False, True]))
        assert table.answer_snapshot() == frozenset({1, 3})
        assert table.answer_size == 2

    def test_tracked_ops_and_difference(self):
        table = StreamStateTable(5)
        table.tracked_replace([0, 1, 2])
        table.answer_replace([0, 2])
        assert table.tracked_size == 3
        assert list(table.tracked_not_in_answer()) == [1]
        table.tracked_discard(1)
        assert table.tracked_snapshot() == frozenset({0, 2})

    def test_silencer_flags(self):
        table = StreamStateTable(3)
        table.set_silencer(0, SILENCER_FP)
        table.set_silencer(1, SILENCER_FN)
        assert table.silencer_of(0) == SILENCER_FP
        assert table.silencer_of(1) == SILENCER_FN
        table.clear_silencers()
        assert table.silencer_of(0) == SILENCER_NONE


class TestListeners:
    def test_listeners_notified_per_report(self):
        table = StreamStateTable(3)
        notes = []

        class Spy:
            def note(self, stream_id):
                notes.append(stream_id)

            def invalidate(self):
                notes.append("all")

        spy = Spy()
        table.add_listener(spy)
        table.add_listener(spy)  # idempotent
        table.record_report(1, 5.0, 0.0)
        table.record_report_bulk(np.zeros(3), 1.0)
        assert notes == [1, "all"]
        table.remove_listener(spy)
        table.record_report(0, 2.0, 2.0)
        assert notes == [1, "all"]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            StreamStateTable(-1)


class TestGeometricPlane:
    def test_record_region_deploy_marks_scannable(self):
        table = StreamStateTable(3)
        assert table.geo_lower is None
        table.record_region_deploy(
            1, [0.0, 0.0], [2.0, 2.0], [-1.0, -1.0], [3.0, 3.0]
        )
        assert table.geo_scannable.tolist() == [False, True, False]
        assert np.array_equal(table.geo_lower[1], [0.0, 0.0])
        assert np.array_equal(table.geo_outer_lower[1], [-1.0, -1.0])
        # Unset rows stay claim-free: empty inner, infinite outer.
        assert np.all(np.isinf(table.geo_lower[0]))
        assert table.geo_lower[0][0] > table.geo_upper[0][0]

    def test_omitted_outer_box_defaults_to_infinite(self):
        table = StreamStateTable(1)
        table.record_region_deploy(0, [0.0], [1.0])
        assert np.all(np.isneginf(table.geo_outer_lower[0]))
        assert np.all(np.isposinf(table.geo_outer_upper[0]))
        table.set_inside(0, False)
        # Infinite outer box: no point is provably outside.
        mask = table.geometric_quiescence_mask(np.array([[99.0]]), [0])
        assert not mask[0]

    def test_dimension_mismatch_rejected(self):
        table = StreamStateTable(2)
        table.record_region_deploy(0, [0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError, match="dimension"):
            table.record_region_deploy(1, [0.0], [1.0])
        with pytest.raises(ValueError, match="congruent"):
            table.record_region_deploy(1, [0.0, 0.0], [1.0])

    def test_clear_region_filter(self):
        table = StreamStateTable(2)
        table.record_region_deploy(0, [0.0, 0.0], [4.0, 4.0])
        table.set_inside(0, True)
        assert table.geometric_quiescence_mask(
            np.array([[1.0, 1.0]]), [0]
        )[0]
        table.clear_region_filter(0)
        assert not table.geo_scannable[0]
        assert not table.inside[0]
        assert not table.geometric_quiescence_mask(
            np.array([[1.0, 1.0]]), [0]
        )[0]

    def test_mask_without_geometry_is_all_false(self):
        table = StreamStateTable(2)
        mask = table.geometric_quiescence_mask(np.zeros((2, 3)))
        assert mask.tolist() == [False, False]

    def test_mask_requires_a_point_matrix(self):
        table = StreamStateTable(2)
        with pytest.raises(ValueError, match="matrix"):
            table.geometric_quiescence_mask(np.zeros(2))

    def test_mask_both_believed_sides(self):
        table = StreamStateTable(2)
        for row in (0, 1):
            table.record_region_deploy(
                row, [0.0, 0.0], [1.0, 1.0], [-1.0, -1.0], [2.0, 2.0]
            )
        table.set_inside(0, True)
        table.set_inside(1, False)
        inside_pt = np.array([[0.5, 0.5]])
        outside_pt = np.array([[5.0, 5.0]])
        shell_pt = np.array([[1.5, 1.5]])  # between inner and outer
        assert table.geometric_quiescence_mask(inside_pt, [0])[0]
        assert not table.geometric_quiescence_mask(outside_pt, [0])[0]
        assert not table.geometric_quiescence_mask(shell_pt, [0])[0]
        assert table.geometric_quiescence_mask(outside_pt, [1])[0]
        assert not table.geometric_quiescence_mask(inside_pt, [1])[0]
        assert not table.geometric_quiescence_mask(shell_pt, [1])[0]
