"""Property and edge-case tests for the k-way shard merge.

The sharded coordinator's correctness rests on one claim: any contiguous
partition of a population into per-shard ``RankView``s, merged by
``(key, id)``, reproduces the unsharded ``RankView`` order exactly —
including key ties and duplicate distances.  These tests exercise that
claim over random partitions, random data, and adversarial tie layouts.
"""

import numpy as np
import pytest

from repro.queries.knn import KMinQuery, KnnQuery, TopKQuery
from repro.state.rank import RankView
from repro.state.sharding import (
    ShardedRankView,
    StateShardView,
    merge_pair_lists,
    shard_ranges,
    validate_shard_alignment,
)
from repro.state.table import StreamStateTable


def build_single(query, values):
    table = StreamStateTable(len(values))
    table.record_report_bulk(np.asarray(values, dtype=np.float64), 0.0)
    return table, RankView(table, query.distance_array)


def build_sharded(query, values, ranges):
    parent = StreamStateTable(len(values))
    shards = [StateShardView(parent, lo, hi) for lo, hi in ranges]
    validate_shard_alignment(parent, shards)
    view = ShardedRankView(shards, query.distance_array)
    for shard in shards:
        shard.record_report_bulk(
            np.asarray(values[shard.lo : shard.hi], dtype=np.float64), 0.0
        )
    return parent, shards, view


def random_ranges(rng, n):
    """A random contiguous partition of range(n) into 1..min(n, 6) shards."""
    n_shards = int(rng.integers(1, min(n, 6) + 1))
    cuts = sorted(rng.choice(np.arange(1, n), size=n_shards - 1, replace=False))
    bounds = [0, *[int(c) for c in cuts], n]
    return list(zip(bounds[:-1], bounds[1:]))


# ----------------------------------------------------------------------
# shard_ranges
# ----------------------------------------------------------------------
def test_shard_ranges_balanced_cover():
    for n, s in [(10, 1), (10, 3), (10, 10), (7, 2), (100, 8)]:
        ranges = shard_ranges(n, s)
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        sizes = [hi - lo for lo, hi in ranges]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))


def test_shard_ranges_rejects_bad_counts():
    with pytest.raises(ValueError):
        shard_ranges(5, 0)
    with pytest.raises(ValueError):
        shard_ranges(5, 6)
    with pytest.raises(ValueError):
        shard_ranges(0, 1)


# ----------------------------------------------------------------------
# StateShardView aliasing
# ----------------------------------------------------------------------
def test_shard_view_writes_alias_parent_columns():
    parent = StreamStateTable(10)
    shard = StateShardView(parent, 4, 8)
    shard.record_report(1, 42.0, 3.0)  # global stream 5
    assert parent.values[5] == 42.0
    assert parent.known[5]
    assert parent.report_time[5] == 3.0
    shard.record_deploy(0, -1.0, 1.0)  # global stream 4
    assert parent.lower[4] == -1.0 and parent.upper[4] == 1.0
    assert parent.scannable[4]
    # Parent-side membership writes are visible through the view.
    parent.answer_add(6)
    assert shard.answer_mask[2]


def test_shard_view_notifies_only_local_listeners():
    parent = StreamStateTable(8)
    left = StateShardView(parent, 0, 4)
    right = StateShardView(parent, 4, 8)
    query = TopKQuery(k=2)
    left_view = RankView(left, query.distance_array)
    right_view = RankView(right, query.distance_array)
    left.record_report_bulk(np.arange(4, dtype=np.float64), 0.0)
    right.record_report_bulk(np.arange(4, 8, dtype=np.float64), 0.0)
    left_view.order(), right_view.order()
    assert left_view.is_synced and right_view.is_synced
    right.record_report(1, 99.0, 1.0)  # global stream 5
    assert left_view.is_synced
    assert not right_view.is_synced


def test_shard_view_rejects_bad_ranges():
    parent = StreamStateTable(4)
    with pytest.raises(ValueError):
        StateShardView(parent, 2, 2)
    with pytest.raises(ValueError):
        StateShardView(parent, 0, 5)


def test_shard_view_vector_payloads_alias_parent_points():
    """Vector-payload (spatial) tables shard like scalar ones."""
    parent = StreamStateTable(6)
    left = StateShardView(parent, 0, 3)
    right = StateShardView(parent, 3, 6)
    # Points allocated through a view after the views were built.
    right.record_report(1, np.array([1.0, 2.0]), 0.5)  # global stream 4
    assert parent.points is not None and parent.points.shape == (6, 2)
    assert np.array_equal(parent.points[4], [1.0, 2.0])
    assert right.known[1] and parent.known[4]
    # Points allocated on the parent are visible through every view.
    parent.record_report(0, np.array([9.0, 9.0]), 1.0)
    assert np.array_equal(left.points[0], [9.0, 9.0])
    assert left.payload_array().shape == (3, 2)


def test_shard_view_geometric_plane_aliases_parent():
    parent = StreamStateTable(6)
    left = StateShardView(parent, 0, 3)
    right = StateShardView(parent, 3, 6)
    # Geometric plane allocated via a view write, visible everywhere.
    right.record_region_deploy(
        0, [1.0, 1.0], [2.0, 2.0], [0.0, 0.0], [3.0, 3.0]
    )  # global stream 3
    assert parent.geo_scannable[3] and right.geo_scannable[0]
    assert np.array_equal(parent.geo_lower[3], [1.0, 1.0])
    assert np.array_equal(left.geo_upper[2], [-np.inf, -np.inf])
    parent.set_inside(3, True)
    quiescent = parent.geometric_quiescence_mask(
        np.array([[1.5, 1.5]]), np.array([3])
    )
    assert quiescent.tolist() == [True]
    right.clear_region_filter(0)
    assert not parent.geo_scannable[3]


def test_shard_view_container_column_aliases_parent():
    parent = StreamStateTable(4)
    shard = StateShardView(parent, 2, 4)
    marker = object()
    shard.record_container_deploy(1, marker)  # global stream 3
    assert parent.containers is not None
    assert parent.containers[3] is marker
    assert shard.containers[1] is marker


def test_validate_shard_alignment_catches_gaps():
    parent = StreamStateTable(10)
    shards = [StateShardView(parent, 0, 4), StateShardView(parent, 5, 10)]
    with pytest.raises(ValueError, match="contiguous"):
        validate_shard_alignment(parent, shards)


# ----------------------------------------------------------------------
# merge_pair_lists
# ----------------------------------------------------------------------
def test_merge_pair_lists_breaks_key_ties_by_id():
    left = [(1.0, 0), (2.0, 2)]
    right = [(1.0, 1), (1.0, 3)]
    assert merge_pair_lists([left, right]) == [0, 1, 3, 2]
    assert merge_pair_lists([left, right], count=2) == [0, 1]
    assert merge_pair_lists([]) == []


# ----------------------------------------------------------------------
# ShardedRankView == RankView, property-style
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "query", [KnnQuery(q=50.0, k=4), TopKQuery(k=4), KMinQuery(k=4)]
)
@pytest.mark.parametrize("seed", range(6))
def test_random_partition_order_matches_unsharded(query, seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 120))
    values = rng.normal(50.0, 20.0, size=n)
    _, single = build_single(query, values)
    _, _, sharded = build_sharded(query, values, random_ranges(rng, n))
    assert sharded.order() == single.order()
    for count in (0, 1, query.k, query.k + 1, n, n + 5):
        assert sharded.leaders(count) == single.leaders(count)


@pytest.mark.parametrize("seed", range(4))
def test_random_partition_topk_with_duplicate_distances(seed):
    # Values drawn from a tiny grid force massive key duplication, so
    # every cross-shard tie must be broken by global stream id.
    rng = np.random.default_rng(100 + seed)
    n = int(rng.integers(8, 80))
    values = rng.choice([10.0, 20.0, 30.0], size=n)
    query = TopKQuery(k=5)
    _, single = build_single(query, values)
    _, _, sharded = build_sharded(query, values, random_ranges(rng, n))
    assert sharded.order() == single.order()
    assert sharded.leaders(6) == single.leaders(6)


def test_all_streams_equidistant_ties():
    # Every key identical: the merged order must be 0..n-1 exactly.
    n = 23
    values = np.full(n, 7.0)
    query = KnnQuery(q=7.0, k=3)
    _, _, sharded = build_sharded(query, values, shard_ranges(n, 4))
    assert sharded.order() == list(range(n))
    assert sharded.leaders(4) == [0, 1, 2, 3]


def test_boundary_tie_straddles_a_shard_cut():
    # Streams 3 and 4 tie and sit on opposite sides of the shard cut.
    values = [5.0, 1.0, 9.0, 4.0, 4.0, 8.0, 2.0, 6.0]
    query = KMinQuery(k=3)
    _, single = build_single(query, values)
    _, _, sharded = build_sharded(query, values, [(0, 4), (4, 8)])
    assert sharded.leaders(4) == single.leaders(4)
    assert sharded.order() == single.order()


def test_point_updates_repair_only_dirty_shards_but_stay_exact():
    rng = np.random.default_rng(7)
    n = 60
    values = rng.normal(0.0, 10.0, size=n)
    query = TopKQuery(k=3)
    table, single = build_single(query, values)
    parent, shards, sharded = build_sharded(
        query, values, shard_ranges(n, 3)
    )
    assert sharded.order() == single.order()  # sync both
    for _ in range(40):
        stream = int(rng.integers(0, n))
        value = float(rng.normal(0.0, 10.0))
        table.record_report(stream, value, 1.0)
        for shard in shards:
            if shard.lo <= stream < shard.hi:
                shard.record_report(stream - shard.lo, value, 1.0)
        assert sharded.order() == single.order()
        assert sharded.leaders(4) == single.leaders(4)


def test_key_of_and_invalidate_roundtrip():
    values = [3.0, 1.0, 2.0, 5.0, 4.0]
    query = KMinQuery(k=2)
    _, single = build_single(query, values)
    _, _, sharded = build_sharded(query, values, [(0, 2), (2, 5)])
    for stream in range(5):
        assert sharded.key_of(stream) == single.key_of(stream)
    with pytest.raises(IndexError):
        sharded.key_of(5)
    sharded.invalidate()
    assert not sharded.is_synced
    assert sharded.order() == single.order()


def test_partial_known_population():
    # Only some streams known: the merged order covers exactly the known
    # ids, like the unsharded view.
    query = TopKQuery(k=2)
    single_table = StreamStateTable(9)
    single = RankView(single_table, query.distance_array)
    parent = StreamStateTable(9)
    shards = [StateShardView(parent, lo, hi) for lo, hi in shard_ranges(9, 3)]
    sharded = ShardedRankView(shards, query.distance_array)
    for stream, value in [(0, 5.0), (4, 9.0), (5, 9.0), (8, 1.0)]:
        single_table.record_report(stream, value, 0.0)
        for shard in shards:
            if shard.lo <= stream < shard.hi:
                shard.record_report(stream - shard.lo, value, 0.0)
    assert sharded.order() == single.order() == [4, 5, 0, 8]
    assert sharded.leaders(2) == [4, 5]
