"""Unit + property tests for value-evolution processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.generators import (
    BoundedRandomWalk,
    MeanRevertingWalk,
    RandomWalk,
)


class TestRandomWalk:
    def test_step_statistics(self):
        walk = RandomWalk(sigma=20.0)
        rng = np.random.default_rng(0)
        steps = np.array([walk.step(0.0, rng) for _ in range(4000)])
        assert abs(steps.mean()) < 1.5
        assert steps.std() == pytest.approx(20.0, rel=0.1)

    def test_vectorized_steps_match_walk_structure(self):
        walk = RandomWalk(sigma=5.0)
        rng = np.random.default_rng(1)
        values = walk.steps(100.0, 50, rng)
        assert len(values) == 50
        increments = np.diff(np.concatenate([[100.0], values]))
        assert abs(increments.std() - 5.0) < 2.0

    def test_zero_sigma_is_constant(self):
        walk = RandomWalk(sigma=0.0)
        rng = np.random.default_rng(2)
        assert walk.step(7.0, rng) == 7.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            RandomWalk(sigma=-1.0)

    def test_drift(self):
        walk = RandomWalk(sigma=0.0, mu=2.0)
        rng = np.random.default_rng(0)
        values = walk.steps(0.0, 5, rng)
        np.testing.assert_allclose(values, [2.0, 4.0, 6.0, 8.0, 10.0])


class TestBoundedRandomWalk:
    @given(
        st.floats(0.0, 1000.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50)
    def test_values_stay_in_bounds(self, initial, seed):
        walk = BoundedRandomWalk(sigma=200.0, low=0.0, high=1000.0)
        rng = np.random.default_rng(seed)
        values = walk.steps(initial, 100, rng)
        assert np.all(values >= 0.0)
        assert np.all(values <= 1000.0)

    def test_reflection_mirrors_overshoot(self):
        walk = BoundedRandomWalk(sigma=0.0, low=0.0, high=10.0)
        assert walk._reflect(12.0) == 8.0
        assert walk._reflect(-3.0) == 3.0
        assert walk._reflect(5.0) == 5.0
        assert walk._reflect(25.0) == 5.0  # wraps a full period

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            BoundedRandomWalk(low=5.0, high=5.0)

    def test_vectorized_matches_scalar_reflection(self):
        walk = BoundedRandomWalk(sigma=50.0, low=0.0, high=100.0)
        rng = np.random.default_rng(3)
        values = walk.steps(50.0, 200, rng)
        assert np.all((values >= 0.0) & (values <= 100.0))


class TestMeanRevertingWalk:
    def test_pulls_toward_target(self):
        walk = MeanRevertingWalk(target=100.0, theta=0.5, sigma=0.0)
        rng = np.random.default_rng(0)
        value = 0.0
        for _ in range(20):
            value = walk.step(value, rng)
        assert value == pytest.approx(100.0, abs=0.1)

    def test_invalid_theta_rejected(self):
        with pytest.raises(ValueError):
            MeanRevertingWalk(target=0.0, theta=1.5)

    def test_stationary_spread_is_bounded(self):
        walk = MeanRevertingWalk(target=0.0, theta=0.2, sigma=10.0)
        rng = np.random.default_rng(4)
        values = walk.steps(0.0, 2000, rng)
        # OU stationary sd = sigma / sqrt(theta * (2 - theta)) ~ 16.7
        assert values.std() < 40.0
