"""Unit + property tests for filter-constraint semantics (Section 3.1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.filters import (
    FALSE_NEGATIVE_FILTER,
    FALSE_POSITIVE_FILTER,
    FilterConstraint,
)

finite = st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False)


class TestContains:
    def test_closed_interval_includes_endpoints(self):
        constraint = FilterConstraint(1.0, 2.0)
        assert constraint.contains(1.0)
        assert constraint.contains(2.0)
        assert constraint.contains(1.5)
        assert not constraint.contains(0.999)
        assert not constraint.contains(2.001)

    def test_degenerate_point_interval(self):
        constraint = FilterConstraint(5.0, 5.0)
        assert constraint.contains(5.0)
        assert not constraint.contains(5.0001)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            FilterConstraint(2.0, 1.0)

    def test_nan_bounds_rejected(self):
        with pytest.raises(ValueError):
            FilterConstraint(math.nan, 1.0)
        with pytest.raises(ValueError):
            FilterConstraint(0.0, math.nan)


class TestViolation:
    def test_crossing_out_violates(self):
        constraint = FilterConstraint(10.0, 20.0)
        assert constraint.violated_by(last_reported=15.0, current=25.0)

    def test_crossing_in_violates(self):
        constraint = FilterConstraint(10.0, 20.0)
        assert constraint.violated_by(last_reported=5.0, current=12.0)

    def test_staying_inside_does_not_violate(self):
        constraint = FilterConstraint(10.0, 20.0)
        assert not constraint.violated_by(11.0, 19.0)

    def test_staying_outside_does_not_violate(self):
        constraint = FilterConstraint(10.0, 20.0)
        assert not constraint.violated_by(5.0, 100.0)  # jumps across!

    @given(finite, finite)
    def test_violation_is_symmetric_in_membership_flip(self, a, b):
        constraint = FilterConstraint(10.0, 20.0)
        assert constraint.violated_by(a, b) == constraint.violated_by(b, a)

    @given(finite)
    def test_no_self_violation(self, value):
        constraint = FilterConstraint(-5.0, 5.0)
        assert not constraint.violated_by(value, value)

    @given(finite, finite)
    def test_violation_definition(self, last, current):
        """violated <=> exactly one of the two values is inside."""
        constraint = FilterConstraint(-1.0, 1.0)
        expected = constraint.contains(last) != constraint.contains(current)
        assert constraint.violated_by(last, current) == expected


class TestDegenerateFilters:
    @given(finite, finite)
    def test_false_positive_filter_never_violated(self, last, current):
        assert not FALSE_POSITIVE_FILTER.violated_by(last, current)

    @given(finite, finite)
    def test_false_negative_filter_never_violated(self, last, current):
        assert not FALSE_NEGATIVE_FILTER.violated_by(last, current)

    def test_classification_flags(self):
        assert FALSE_POSITIVE_FILTER.is_false_positive_filter
        assert not FALSE_POSITIVE_FILTER.is_false_negative_filter
        assert FALSE_NEGATIVE_FILTER.is_false_negative_filter
        assert not FALSE_NEGATIVE_FILTER.is_false_positive_filter
        assert FALSE_POSITIVE_FILTER.is_silencing
        assert FALSE_NEGATIVE_FILTER.is_silencing
        assert not FilterConstraint(0.0, 1.0).is_silencing

    def test_half_line_is_not_silencing(self):
        assert not FilterConstraint(-math.inf, 3.0).is_silencing
        assert not FilterConstraint(3.0, math.inf).is_silencing


class TestDistances:
    def test_distance_to_interval(self):
        constraint = FilterConstraint(10.0, 20.0)
        assert constraint.distance_to(5.0) == 5.0
        assert constraint.distance_to(25.0) == 5.0
        assert constraint.distance_to(15.0) == 0.0

    def test_boundary_distance_inside(self):
        constraint = FilterConstraint(10.0, 20.0)
        assert constraint.boundary_distance(12.0) == 2.0
        assert constraint.boundary_distance(19.0) == 1.0
        assert constraint.boundary_distance(15.0) == 5.0

    def test_boundary_distance_outside(self):
        constraint = FilterConstraint(10.0, 20.0)
        assert constraint.boundary_distance(7.0) == 3.0
        assert constraint.boundary_distance(24.0) == 4.0

    def test_boundary_distance_of_silencing_filter_is_infinite(self):
        assert FALSE_POSITIVE_FILTER.boundary_distance(0.0) == math.inf

    @given(finite)
    def test_boundary_distance_nonnegative(self, value):
        constraint = FilterConstraint(-3.0, 7.0)
        assert constraint.boundary_distance(value) >= 0.0

    def test_width(self):
        assert FilterConstraint(2.0, 12.0).width == 10.0
