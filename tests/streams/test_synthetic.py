"""Tests for the Section 6.2 synthetic workload generator."""

import numpy as np
import pytest

from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace


class TestConfig:
    def test_defaults_match_paper(self):
        config = SyntheticConfig()
        assert config.n_streams == 5000
        assert config.mean_interarrival == 20.0
        assert config.sigma == 20.0
        assert (config.value_low, config.value_high) == (0.0, 1000.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_streams", 0),
            ("horizon", -1.0),
            ("mean_interarrival", 0.0),
            ("sigma", -5.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SyntheticConfig(**{field: value})

    def test_inverted_value_range_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(value_low=10.0, value_high=5.0)


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        config = SyntheticConfig(n_streams=50, horizon=100.0, seed=5)
        a = generate_synthetic_trace(config)
        b = generate_synthetic_trace(config)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.initial_values, b.initial_values)

    def test_different_seeds_differ(self):
        a = generate_synthetic_trace(SyntheticConfig(n_streams=50, horizon=100.0, seed=1))
        b = generate_synthetic_trace(SyntheticConfig(n_streams=50, horizon=100.0, seed=2))
        assert not np.array_equal(a.values, b.values)

    def test_initial_values_in_range(self):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=500, horizon=10.0, seed=0)
        )
        assert np.all(trace.initial_values >= 0.0)
        assert np.all(trace.initial_values <= 1000.0)
        # Uniform: mean near 500.
        assert abs(trace.initial_values.mean() - 500.0) < 50.0

    def test_record_count_matches_poisson_rate(self):
        config = SyntheticConfig(
            n_streams=200, horizon=400.0, mean_interarrival=20.0, seed=3
        )
        trace = generate_synthetic_trace(config)
        expected = 200 * 400.0 / 20.0
        assert expected * 0.9 < trace.n_records < expected * 1.1

    def test_interarrival_mean(self):
        config = SyntheticConfig(n_streams=1, horizon=50_000.0, seed=2)
        trace = generate_synthetic_trace(config)
        gaps = np.diff(np.concatenate([[0.0], trace.times]))
        assert gaps.mean() == pytest.approx(20.0, rel=0.1)

    def test_step_sigma(self):
        config = SyntheticConfig(n_streams=1, horizon=50_000.0, sigma=20.0, seed=4)
        trace = generate_synthetic_trace(config)
        steps = np.diff(
            np.concatenate([[trace.initial_values[0]], trace.values])
        )
        assert abs(steps.mean()) < 2.0
        assert steps.std() == pytest.approx(20.0, rel=0.1)

    def test_sigma_override_kwarg(self):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=1, horizon=20_000.0, seed=4), sigma=60.0
        )
        steps = np.diff(
            np.concatenate([[trace.initial_values[0]], trace.values])
        )
        assert steps.std() == pytest.approx(60.0, rel=0.15)

    def test_times_sorted_and_within_horizon(self):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=30, horizon=200.0, seed=6)
        )
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.times[-1] <= trace.horizon

    def test_metadata_carries_parameters(self):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=10, horizon=50.0, sigma=40.0, seed=9)
        )
        assert trace.metadata["workload"] == "synthetic"
        assert trace.metadata["sigma"] == 40.0
        assert trace.metadata["seed"] == 9
