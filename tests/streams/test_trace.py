"""Unit + property tests for trace containers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.trace import StreamTrace, TraceRecord, merge_traces


def make_trace(times, ids, values, n_streams=5, horizon=None):
    times = np.asarray(times, dtype=float)
    return StreamTrace(
        initial_values=np.zeros(n_streams),
        times=times,
        stream_ids=np.asarray(ids, dtype=np.int64),
        values=np.asarray(values, dtype=float),
        horizon=horizon if horizon is not None else (times[-1] if len(times) else 0.0),
    )


class TestValidation:
    def test_unsorted_times_rejected(self):
        with pytest.raises(ValueError):
            make_trace([2.0, 1.0], [0, 1], [1.0, 2.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            StreamTrace(
                initial_values=np.zeros(2),
                times=np.array([1.0]),
                stream_ids=np.array([0, 1]),
                values=np.array([1.0]),
                horizon=2.0,
            )

    def test_unknown_stream_id_rejected(self):
        with pytest.raises(ValueError):
            make_trace([1.0], [7], [1.0], n_streams=3)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            make_trace([-1.0], [0], [1.0])

    def test_horizon_before_last_record_rejected(self):
        with pytest.raises(ValueError):
            make_trace([5.0], [0], [1.0], horizon=3.0)

    def test_empty_trace_is_valid(self):
        trace = make_trace([], [], [], horizon=10.0)
        assert trace.n_records == 0
        assert list(trace) == []


class TestAccessors:
    def test_iteration_yields_records(self, manual_trace):
        records = list(manual_trace)
        assert records[0] == TraceRecord(1.0, 0, 12.0)
        assert len(records) == manual_trace.n_records == 5

    def test_value_at_follows_updates(self, manual_trace):
        assert manual_trace.value_at(0, 0.5) == 5.0
        assert manual_trace.value_at(0, 1.0) == 12.0
        assert manual_trace.value_at(0, 4.5) == 4.0
        assert manual_trace.value_at(1, 10.0) == 30.0
        assert manual_trace.value_at(3, 4.9) == 12.0

    def test_len_matches_records(self, manual_trace):
        assert len(manual_trace) == 5


class TestTransforms:
    def test_restrict_streams_keeps_prefix(self, manual_trace):
        restricted = manual_trace.restrict_streams(2)
        assert restricted.n_streams == 2
        assert all(r.stream_id < 2 for r in restricted)
        assert restricted.n_records == 3  # records of streams 0 and 1

    def test_restrict_streams_bounds(self, manual_trace):
        with pytest.raises(ValueError):
            manual_trace.restrict_streams(0)
        with pytest.raises(ValueError):
            manual_trace.restrict_streams(99)

    def test_truncate(self, manual_trace):
        truncated = manual_trace.truncate(3.0)
        assert truncated.n_records == 3
        assert truncated.horizon == 3.0

    def test_truncate_negative_rejected(self, manual_trace):
        with pytest.raises(ValueError):
            manual_trace.truncate(-1.0)

    @given(st.integers(1, 4))
    def test_restrict_preserves_relative_order(self, n):
        trace = make_trace(
            [1.0, 1.0, 2.0, 3.0], [0, 3, 1, 0], [1.0, 2.0, 3.0, 4.0]
        )
        restricted = trace.restrict_streams(n)
        assert np.all(np.diff(restricted.times) >= 0)


class TestSerialization:
    def test_save_load_roundtrip(self, manual_trace, tmp_path):
        path = tmp_path / "trace.npz"
        manual_trace.save(path)
        loaded = StreamTrace.load(path)
        np.testing.assert_array_equal(
            loaded.initial_values, manual_trace.initial_values
        )
        np.testing.assert_array_equal(loaded.times, manual_trace.times)
        np.testing.assert_array_equal(loaded.values, manual_trace.values)
        assert loaded.horizon == manual_trace.horizon


class TestMerge:
    def test_merge_offsets_ids_and_sorts(self):
        a = make_trace([1.0, 3.0], [0, 1], [1.0, 2.0], n_streams=2)
        b = make_trace([2.0], [0], [9.0], n_streams=1)
        merged = merge_traces([a, b], horizon=5.0)
        assert merged.n_streams == 3
        assert [r.stream_id for r in merged] == [0, 2, 1]
        assert np.all(np.diff(merged.times) >= 0)

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_traces([], horizon=1.0)
