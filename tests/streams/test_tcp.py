"""Tests for the synthetic TCP workload (Section 6.1 substitute)."""

import numpy as np
import pytest

from repro.streams.tcp import TIME_UNITS_PER_DAY, TcpTraceConfig, generate_tcp_trace


@pytest.fixture(scope="module")
def tcp_trace():
    return generate_tcp_trace(
        TcpTraceConfig(n_subnets=200, n_connections=8000, days=10.0, seed=0)
    )


class TestConfig:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_subnets", 0),
            ("n_connections", -1),
            ("days", 0.0),
            ("zipf_exponent", 0.0),
            ("base_median", 0.0),
            ("burst_fraction", 1.0),
            ("autocorrelation", 1.0),
            ("diurnal_amplitude", 1.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            TcpTraceConfig(**{field: value})

    def test_horizon_in_days(self):
        assert TcpTraceConfig(days=30.0).horizon == 30.0 * TIME_UNITS_PER_DAY


class TestGeneration:
    def test_deterministic(self):
        config = TcpTraceConfig(n_subnets=50, n_connections=500, seed=3)
        a = generate_tcp_trace(config)
        b = generate_tcp_trace(config)
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.times, b.times)

    def test_shape_and_ranges(self, tcp_trace):
        assert tcp_trace.n_streams == 200
        assert tcp_trace.n_records == 8000
        assert np.all(tcp_trace.stream_ids >= 0)
        assert np.all(tcp_trace.stream_ids < 200)
        assert np.all(tcp_trace.values > 0)
        assert np.all(np.diff(tcp_trace.times) >= 0)
        assert tcp_trace.times[-1] <= tcp_trace.horizon

    def test_zipf_popularity_is_skewed(self, tcp_trace):
        counts = np.bincount(tcp_trace.stream_ids, minlength=200)
        counts = np.sort(counts)[::-1]
        # Top 10% of subnets should carry well over 10% of connections.
        assert counts[:20].sum() > 0.3 * counts.sum()

    def test_values_are_heavy_tailed(self, tcp_trace):
        values = tcp_trace.values
        # Mean above median is the signature of right skew; the exact gap
        # depends on which (Zipf-weighted) subnets dominate the records.
        assert values.mean() > 1.1 * np.median(values)
        # And the extreme tail reaches far beyond the bulk.
        assert values.max() > 5.0 * np.percentile(values, 95)

    def test_persistent_subnet_levels(self, tcp_trace):
        """Within-subnet value spread is far below across-subnet spread."""
        log_values = np.log(tcp_trace.values)
        ids = tcp_trace.stream_ids
        per_subnet_std = []
        for subnet in range(200):
            mask = ids == subnet
            if mask.sum() >= 20:
                per_subnet_std.append(log_values[mask].std())
        across = log_values.std()
        assert np.mean(per_subnet_std) < 0.7 * across

    def test_range_query_selectivity_reasonable(self, tcp_trace):
        """The paper's [400, 600] query should catch a usable slice."""
        initial_in = (
            (tcp_trace.initial_values >= 400) & (tcp_trace.initial_values <= 600)
        ).mean()
        assert 0.05 < initial_in < 0.5

    def test_override_kwargs(self):
        trace = generate_tcp_trace(
            TcpTraceConfig(n_subnets=50, n_connections=300, seed=1),
            n_connections=600,
        )
        assert trace.n_records == 600

    def test_metadata(self, tcp_trace):
        assert tcp_trace.metadata["workload"] == "tcp"
        assert tcp_trace.metadata["n_subnets"] == 200
