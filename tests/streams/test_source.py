"""Unit tests for source-side filter behaviour."""

import math

from repro.network.messages import (
    ConstraintMessage,
    MessageKind,
    ProbeRequestMessage,
)


def test_no_filter_reports_every_change(wired_channel):
    channel, ledger, sources, received = wired_channel
    sources[0].apply_value(1.0, time=1.0)
    sources[0].apply_value(2.0, time=2.0)
    assert [m.value for m in received] == [1.0, 2.0]


def test_filter_suppresses_non_crossing_changes(wired_channel):
    channel, ledger, sources, received = wired_channel
    channel.send_to_source(
        ConstraintMessage(0, 0.0, lower=0.0, upper=10.0, assumed_inside=True)
    )
    received.clear()
    sources[0].apply_value(3.0, 1.0)   # inside, no report
    sources[0].apply_value(9.0, 2.0)   # inside, no report
    assert received == []
    sources[0].apply_value(11.0, 3.0)  # crossed out: report
    assert [m.value for m in received] == [11.0]
    sources[0].apply_value(20.0, 4.0)  # still outside: no report
    assert len(received) == 1
    sources[0].apply_value(5.0, 5.0)   # crossed back in: report
    assert [m.value for m in received] == [11.0, 5.0]


def test_false_positive_filter_silences_source(wired_channel):
    channel, ledger, sources, received = wired_channel
    channel.send_to_source(
        ConstraintMessage(1, 0.0, lower=-math.inf, upper=math.inf)
    )
    received.clear()
    for value in (0.0, 1e6, -1e6, 42.0):
        sources[1].apply_value(value, 1.0)
    assert received == []


def test_false_negative_filter_silences_source(wired_channel):
    channel, ledger, sources, received = wired_channel
    channel.send_to_source(
        ConstraintMessage(1, 0.0, lower=math.inf, upper=math.inf)
    )
    received.clear()
    for value in (0.0, 1e6, -1e6):
        sources[1].apply_value(value, 1.0)
    assert received == []


def test_probe_returns_current_value_and_refreshes_state(wired_channel):
    channel, ledger, sources, received = wired_channel
    channel.send_to_source(
        ConstraintMessage(0, 0.0, lower=0.0, upper=10.0, assumed_inside=True)
    )
    received.clear()
    sources[0].apply_value(4.0, 1.0)  # inside: silent
    channel.send_to_source(ProbeRequestMessage(0, 2.0))
    assert received[-1].kind is MessageKind.PROBE_REPLY
    assert received[-1].value == 4.0


def test_stale_belief_triggers_self_correction(wired_channel):
    channel, ledger, sources, received = wired_channel
    sources[2].value = 15.0
    # Server wrongly believes source 2 (value 15) is outside [0, 10]...
    # that belief is *correct*; no report.
    channel.send_to_source(
        ConstraintMessage(2, 0.0, lower=0.0, upper=10.0, assumed_inside=False)
    )
    assert received == []
    # Now the server wrongly believes it is inside: one corrective update.
    channel.send_to_source(
        ConstraintMessage(2, 1.0, lower=0.0, upper=10.0, assumed_inside=True)
    )
    assert len(received) == 1
    assert received[0].kind is MessageKind.UPDATE
    assert received[0].value == 15.0
    # The correction resynchronized state: no further report until a cross.
    received.clear()
    sources[2].apply_value(20.0, 2.0)
    assert received == []


def test_fresh_deploy_needs_no_belief(wired_channel):
    channel, ledger, sources, received = wired_channel
    sources[0].value = 5.0
    channel.send_to_source(
        ConstraintMessage(0, 0.0, lower=0.0, upper=10.0, assumed_inside=None)
    )
    assert received == []
    assert sources[0].reported_inside is True


def test_redeployment_replaces_constraint(wired_channel):
    channel, ledger, sources, received = wired_channel
    channel.send_to_source(
        ConstraintMessage(0, 0.0, lower=0.0, upper=10.0, assumed_inside=None)
    )
    channel.send_to_source(
        ConstraintMessage(0, 1.0, lower=100.0, upper=200.0, assumed_inside=None)
    )
    received.clear()
    sources[0].apply_value(150.0, 2.0)  # enters the *new* range: report
    assert len(received) == 1
