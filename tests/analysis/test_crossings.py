"""Tests for workload crossing/churn analysis."""

import numpy as np
import pytest

from repro.analysis.crossings import (
    range_crossing_profile,
    rank_churn_profile,
)
from repro.harness.runner import run_protocol
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.queries.knn import TopKQuery
from repro.queries.range_query import RangeQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.streams.trace import StreamTrace


@pytest.fixture
def crossing_trace():
    # Stream 0: enters, leaves, enters again.  Stream 1: never crosses.
    return StreamTrace(
        initial_values=np.array([5.0, 15.0]),
        times=np.array([1.0, 2.0, 3.0, 4.0]),
        stream_ids=np.array([0, 0, 1, 0]),
        values=np.array([12.0, 5.0, 18.0, 11.0]),
        horizon=5.0,
    )


class TestRangeCrossings:
    def test_counts(self, crossing_trace):
        profile = range_crossing_profile(crossing_trace, RangeQuery(10.0, 20.0))
        assert profile.total_updates == 4
        assert profile.crossings == 3
        assert profile.crossing_streams == 1
        assert profile.per_stream == {0: 3}
        assert profile.initial_selectivity == 0.5
        assert profile.crossing_rate == 0.75

    def test_concentration(self, crossing_trace):
        profile = range_crossing_profile(crossing_trace, RangeQuery(10.0, 20.0))
        assert profile.concentration(1) == 1.0

    def test_empty_trace(self):
        trace = StreamTrace(
            initial_values=np.array([1.0]),
            times=np.array([]),
            stream_ids=np.array([]),
            values=np.array([]),
            horizon=1.0,
        )
        profile = range_crossing_profile(trace, RangeQuery(0.0, 10.0))
        assert profile.crossings == 0
        assert profile.crossing_rate == 0.0
        assert profile.concentration(5) == 0.0

    def test_crossings_equal_zt_nrp_cost(self):
        """The profile predicts ZT-NRP's maintenance message count."""
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=80, horizon=200.0, seed=6)
        )
        query = RangeQuery(400.0, 600.0)
        profile = range_crossing_profile(trace, query)
        result = run_protocol(trace, ZeroToleranceRangeProtocol(query))
        assert profile.crossings == result.maintenance_messages


class TestRankChurn:
    def test_static_trace_has_no_churn(self):
        trace = StreamTrace(
            initial_values=np.array([1.0, 2.0, 3.0]),
            times=np.array([1.0]),
            stream_ids=np.array([0]),
            values=np.array([1.1]),  # stays rank 3 for top-k
            horizon=2.0,
        )
        profile = rank_churn_profile(trace, TopKQuery(k=2))
        assert profile.answer_changes == 0
        assert profile.churn_rate == 0.0

    def test_detects_answer_change(self):
        trace = StreamTrace(
            initial_values=np.array([1.0, 2.0, 3.0]),
            times=np.array([1.0]),
            stream_ids=np.array([0]),
            values=np.array([10.0]),  # leaps into the top-2
            horizon=2.0,
        )
        profile = rank_churn_profile(trace, TopKQuery(k=2))
        assert profile.answer_changes == 1
        assert profile.boundary_crossings == 1

    def test_sampling_thins_evaluation(self):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=40, horizon=150.0, seed=1)
        )
        dense = rank_churn_profile(trace, TopKQuery(k=5), sample_every=1)
        sparse = rank_churn_profile(trace, TopKQuery(k=5), sample_every=10)
        assert sparse.total_updates < dense.total_updates

    def test_invalid_sampling_rejected(self):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=10, horizon=20.0, seed=0)
        )
        with pytest.raises(ValueError):
            rank_churn_profile(trace, TopKQuery(k=2), sample_every=0)
