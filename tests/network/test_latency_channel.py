"""Unit + property tests for the latency-modeled delivery discipline.

The property section drives randomized schedules (seeded, shrinkable via
hypothesis) through a :class:`LatencyChannel` and asserts the three
invariants the batched replay and the protocols rely on:

* per-``(direction, stream)`` FIFO — no message overtakes an earlier one
  of its own flow;
* exactly-once — every sent message is delivered once, whether by its
  engine event or the end-of-run drain;
* the deferred-delivery re-entrancy discipline — a host handler is never
  re-entered, even when late deliveries trigger chains of self-
  corrections.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.accounting import MessageLedger
from repro.network.channel import Channel, SynchronousChannel
from repro.network.latency import (
    ExponentialLatency,
    FixedLatency,
    LatencyChannel,
    UniformLatency,
    as_latency_model,
)
from repro.network.messages import (
    ConstraintMessage,
    MessageKind,
    ProbeRequestMessage,
    UpdateMessage,
)
from repro.runtime.dispatch import DeferredDeliveryMixin
from repro.sim.engine import SimulationEngine


def make_channel(model, n_sources=4):
    engine = SimulationEngine()
    ledger = MessageLedger()
    channel = LatencyChannel(ledger, engine, model)
    server_log = []
    channel.bind_server(lambda m: server_log.append((m, engine.now)))
    source_logs = {i: [] for i in range(n_sources)}
    for i in range(n_sources):
        channel.bind_source(i, lambda m, i=i: source_logs[i].append(m))
    return engine, ledger, channel, server_log, source_logs


# ----------------------------------------------------------------------
# Models
# ----------------------------------------------------------------------
class TestModels:
    def test_as_latency_model_coercions(self):
        assert as_latency_model(None) is None
        assert as_latency_model(0.5) == FixedLatency(0.5, 0.5)
        assert as_latency_model(0) == FixedLatency(0.0, 0.0)
        model = UniformLatency(0.1, 0.2, seed=3)
        assert as_latency_model(model) is model

    def test_invalid_latencies_rejected(self):
        with pytest.raises(ValueError):
            as_latency_model(-1.0)
        with pytest.raises(TypeError):
            as_latency_model(True)
        with pytest.raises(TypeError):
            as_latency_model("fast")
        with pytest.raises(ValueError):
            FixedLatency(-0.1, 0.0)
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)
        with pytest.raises(ValueError):
            ExponentialLatency(-1.0, 0.0)

    def test_models_are_hashable_values(self):
        assert hash(FixedLatency.symmetric(1.0)) == hash(FixedLatency(1.0, 1.0))
        assert UniformLatency(0.0, 1.0, seed=2) == UniformLatency(0.0, 1.0, 2)

    def test_seeded_samplers_are_reproducible_and_independent(self):
        model = UniformLatency(0.0, 1.0, seed=9)
        a, b = model.make_sampler(), model.make_sampler()
        draws_a = [a(True) for _ in range(5)]
        # Uplink draws do not perturb downlink draws.
        [b(False) for _ in range(50)]
        assert [b(True) for _ in range(5)] == draws_a

    def test_per_channel_samplers_draw_distinct_sequences(self):
        """Regression: sharded assemblies build one sampler per channel;
        shard k must not replay shard j's delay sequence."""
        model = UniformLatency(0.0, 1.0, seed=9)
        shard0 = model.make_sampler(0)
        shard1 = model.make_sampler(1)
        seq0 = [shard0(True) for _ in range(8)]
        seq1 = [shard1(True) for _ in range(8)]
        assert seq0 != seq1
        # ... while staying deterministic per (seed, channel).
        replay = model.make_sampler(1)
        assert [replay(True) for _ in range(8)] == seq1

    def test_synchronous_channel_is_channel(self):
        assert SynchronousChannel is Channel


# ----------------------------------------------------------------------
# Delivery discipline
# ----------------------------------------------------------------------
class TestDelivery:
    def test_zero_latency_delivers_inline(self):
        engine, ledger, channel, server_log, _ = make_channel(
            FixedLatency(0.0, 0.0)
        )
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=5.0))
        assert len(server_log) == 1
        assert channel.in_flight_count == 0
        assert channel.deferred_delivered_count == 0

    def test_positive_latency_defers_until_engine_reaches_time(self):
        engine, ledger, channel, server_log, _ = make_channel(
            FixedLatency(uplink=2.0, downlink=1.0)
        )
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=5.0))
        assert server_log == []
        assert channel.in_flight_count == 1
        assert channel.next_delivery_time == 2.0
        assert channel.in_flight_stream_ids() == {1}
        engine.run(until=1.9)
        assert server_log == []
        engine.run(until=2.0)
        assert len(server_log) == 1
        message, delivered_at = server_log[0]
        assert delivered_at == 2.0
        assert message.time == 0.0  # send timestamp preserved
        assert channel.in_flight_count == 0
        assert channel.deferred_delivered_count == 1

    def test_ledger_charged_at_send_time(self):
        engine, ledger, channel, server_log, _ = make_channel(
            FixedLatency.symmetric(5.0)
        )
        channel.send_to_server(UpdateMessage(stream_id=0, time=0.0, value=1.0))
        assert ledger.count(MessageKind.UPDATE) == 1  # before delivery

    def test_probe_round_trip_stays_synchronous(self):
        engine, ledger, channel, server_log, source_logs = make_channel(
            FixedLatency.symmetric(10.0)
        )
        channel.send_to_source(ProbeRequestMessage(stream_id=2, time=0.0))
        assert len(source_logs[2]) == 1  # delivered inline despite latency
        assert channel.in_flight_count == 0

    def test_taps_fire_at_delivery_not_send(self):
        engine, ledger, channel, server_log, _ = make_channel(
            FixedLatency(uplink=3.0, downlink=0.0)
        )
        tapped = []
        channel.add_tap(lambda m: tapped.append((m.stream_id, engine.now)))
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=1.0))
        assert tapped == []
        engine.run()
        assert tapped == [(1, 3.0)]

    def test_per_stream_fifo_clamps_overtaking(self):
        """A second send of the same flow with a shorter delay must not
        arrive before the first."""
        engine, ledger, channel, server_log, _ = make_channel(
            FixedLatency(uplink=5.0, downlink=0.0)
        )
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=1.0))
        # Shrink the delay under the first message's remaining flight.
        channel._sample = lambda is_uplink: 1.0
        engine.schedule_at(
            2.0,
            lambda: channel.send_to_server(
                UpdateMessage(stream_id=1, time=2.0, value=2.0)
            ),
        )
        engine.run()
        values = [m.value for m, _ in server_log]
        assert values == [1.0, 2.0]
        times = [at for _, at in server_log]
        assert times == [5.0, 5.0]  # second clamped to the first's arrival

    def test_zero_draw_never_overtakes_in_flight_flow_mate(self):
        """Regression: a zero-sampled delay must not deliver inline while
        an earlier message of the same (direction, stream) flow is still
        in flight — it joins the heap at the flow's FIFO floor."""
        engine, ledger, channel, server_log, _ = make_channel(
            FixedLatency(uplink=5.0, downlink=0.0)
        )
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=1.0))
        channel._sample = lambda is_uplink: 0.0
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=2.0))
        assert server_log == []  # the zero draw queued behind its mate
        assert channel.in_flight_count == 2
        engine.run()
        assert [m.value for m, _ in server_log] == [1.0, 2.0]
        # An idle flow's zero draw still delivers inline.
        channel.send_to_server(UpdateMessage(stream_id=1, time=6.0, value=3.0))
        assert [m.value for m, _ in server_log] == [1.0, 2.0, 3.0]

    def test_flow_bookkeeping_prunes_after_soak(self):
        """Regression: ``_flow_in_flight`` / ``_fifo_floor`` entries for
        settled flows were never pruned, so a long run leaked one dict
        entry per (direction, stream) flow ever used — and a stale floor
        could clamp a send long after its flow went idle."""
        engine, ledger, channel, server_log, _ = make_channel(
            UniformLatency(0.1, 0.5, seed=2)
        )
        for i in range(500):
            engine.schedule_at(
                float(i),
                lambda i=i: channel.send_to_server(
                    UpdateMessage(stream_id=i % 4, time=float(i), value=float(i))
                ),
            )
        engine.run()
        assert channel.in_flight_count == 0
        assert len(server_log) == 500
        assert channel._flow_in_flight == {}
        assert channel._fifo_floor == {}

    def test_unrelated_streams_may_overtake(self):
        engine, ledger, channel, server_log, _ = make_channel(
            FixedLatency(uplink=5.0, downlink=0.0)
        )
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=1.0))
        channel._sample = lambda is_uplink: 1.0
        engine.schedule_at(
            1.0,
            lambda: channel.send_to_server(
                UpdateMessage(stream_id=2, time=1.0, value=2.0)
            ),
        )
        engine.run()
        assert [m.stream_id for m, _ in server_log] == [2, 1]

    def test_drain_in_flight_delivers_everything_including_cascades(self):
        engine, ledger, channel, server_log, source_logs = make_channel(
            FixedLatency.symmetric(100.0)
        )
        # The server reacts to the drained update by sending a (also
        # delayed) constraint; drain must chase the cascade.
        channel.bind_server(
            lambda m: channel.send_to_source(
                ConstraintMessage(stream_id=m.stream_id, time=m.time)
            )
        )
        channel.send_to_server(UpdateMessage(stream_id=3, time=0.0, value=1.0))
        assert channel.in_flight_count == 1
        drained = channel.drain_in_flight()
        assert drained == 2  # the update and the constraint it triggered
        assert channel.in_flight_count == 0
        assert len(source_logs[3]) == 1

    def test_unbound_endpoints_raise_at_send(self):
        engine = SimulationEngine()
        channel = LatencyChannel(
            MessageLedger(), engine, FixedLatency.symmetric(1.0)
        )
        with pytest.raises(RuntimeError):
            channel.send_to_server(UpdateMessage(0, 0.0, 1.0))
        channel.bind_server(lambda m: None)
        with pytest.raises(RuntimeError):
            channel.send_to_source(ProbeRequestMessage(stream_id=9, time=0.0))

    def test_two_identical_runs_deliver_identically(self):
        def run_once():
            engine, ledger, channel, server_log, _ = make_channel(
                UniformLatency(0.5, 3.0, seed=11)
            )
            for i in range(20):
                engine.schedule_at(
                    float(i),
                    lambda i=i: channel.send_to_server(
                        UpdateMessage(stream_id=i % 4, time=float(i), value=i)
                    ),
                )
            engine.run()
            channel.drain_in_flight()
            return [(m.stream_id, m.value, at) for m, at in server_log]

        assert run_once() == run_once()


# ----------------------------------------------------------------------
# Properties: randomized schedules (seeded, shrinkable)
# ----------------------------------------------------------------------
N_STREAMS = 5


@st.composite
def schedules(draw):
    """A random interleaving of sends: (send time, stream, direction)."""
    n = draw(st.integers(1, 40))
    events = draw(
        st.lists(
            st.tuples(
                st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
                st.integers(0, N_STREAMS - 1),
                st.booleans(),
            ),
            min_size=n,
            max_size=n,
        )
    )
    return sorted(events)


@st.composite
def latency_models(draw):
    kind = draw(st.sampled_from(["fixed", "uniform", "exponential"]))
    seed = draw(st.integers(0, 2**20))
    if kind == "fixed":
        return FixedLatency(
            uplink=draw(st.floats(0.0, 10.0)),
            downlink=draw(st.floats(0.0, 10.0)),
        )
    if kind == "uniform":
        low = draw(st.floats(0.0, 5.0))
        return UniformLatency(
            low=low, high=low + draw(st.floats(0.0, 5.0)), seed=seed
        )
    return ExponentialLatency(
        mean_uplink=draw(st.floats(0.0, 5.0)),
        mean_downlink=draw(st.floats(0.0, 5.0)),
        seed=seed,
    )


@given(schedules(), latency_models(), st.booleans())
@settings(max_examples=80, deadline=None)
def test_every_message_delivered_exactly_once_in_flow_order(
    schedule, model, use_horizon
):
    engine, ledger, channel, server_log, source_logs = make_channel(
        model, n_sources=N_STREAMS
    )
    sent = []

    def send(time, stream_id, uplink):
        seq = len(sent)
        sent.append((uplink, stream_id, seq))
        if uplink:
            channel.send_to_server(
                UpdateMessage(stream_id=stream_id, time=time, value=float(seq))
            )
        else:
            channel.send_to_source(
                ConstraintMessage(stream_id=stream_id, time=time, lower=seq)
            )

    delivered = []
    channel.add_tap(
        lambda m: delivered.append(
            (
                m.kind.is_uplink,
                m.stream_id,
                int(m.value if m.kind.is_uplink else m.lower),
                engine.now,
            )
        )
    )
    for time, stream_id, uplink in schedule:
        engine.schedule_at(
            time, lambda t=time, s=stream_id, u=uplink: send(t, s, u)
        )
    if use_horizon:
        engine.run(until=25.0)  # leave some messages in flight...
        channel.drain_in_flight()  # ...and force-drain the rest
    else:
        engine.run()
        channel.drain_in_flight()

    # Exactly once: multiset equality of (direction, stream, seq).
    assert sorted((u, s, q) for u, s, q, _ in delivered) == sorted(sent)
    assert channel.in_flight_count == 0
    assert channel.delivered_count == len(sent)
    # Per-flow FIFO: within one (direction, stream), send order holds.
    for uplink in (True, False):
        for stream_id in range(N_STREAMS):
            flow_sent = [q for u, s, q in sent if u == uplink and s == stream_id]
            flow_got = [
                q
                for u, s, q, _ in delivered
                if u == uplink and s == stream_id
            ]
            assert flow_got == flow_sent
    # Delivery times never decrease while the engine drives them.
    engine_times = [at for *_, at in delivered]
    assert engine_times == sorted(engine_times)


@given(
    st.floats(0.5, 10.0, allow_nan=False, allow_infinity=False),
    st.floats(0.0, 0.4, allow_nan=False, allow_infinity=False),
    st.integers(0, N_STREAMS - 1),
)
@settings(max_examples=60, deadline=None)
def test_post_drain_zero_draw_clamps_to_fifo_floor(delay, later_draw, stream):
    """Regression: a flow-mate force-delivered at a *future* heap time
    (``drain_in_flight`` with the clock behind the heap) left no floor,
    so a subsequent zero/short draw on the flow delivered inline —
    overtaking the drained mate in delivery-time order.  The floor must
    outlive the drained flow and clamp the later send."""
    engine, ledger, channel, server_log, _ = make_channel(
        FixedLatency(uplink=delay, downlink=0.0), n_sources=N_STREAMS
    )
    channel.send_to_server(UpdateMessage(stream_id=stream, time=0.0, value=1.0))
    channel.drain_in_flight()  # delivered at heap time `delay`; clock still 0
    assert engine.now < delay
    channel._sample = lambda is_uplink: later_draw  # shorter than the floor
    channel.send_to_server(UpdateMessage(stream_id=stream, time=0.0, value=2.0))
    # Not inline, and clamped to the drained mate's arrival time.
    assert [m.value for m, _ in server_log] == [1.0]
    assert channel.next_delivery_time == delay
    engine.run()
    assert [m.value for m, _ in server_log] == [1.0, 2.0]
    assert channel.in_flight_count == 0


class ReentrancyProbe(DeferredDeliveryMixin):
    """A host asserting its handler is never re-entered, while reacting
    to every delivery with further (delayed) traffic."""

    def __init__(self, channel):
        self.channel = channel
        self.depth = 0
        self.max_depth = 0
        self.handled = 0
        self._init_delivery()
        channel.bind_server(self._receive)

    def _receive(self, message):
        self._deliver(message)

    def _handle_delivery(self, message):
        self.depth += 1
        self.max_depth = max(self.max_depth, self.depth)
        self.handled += 1
        try:
            if self.handled < 60:  # react, but terminate the cascade
                self.channel.send_to_source(
                    ConstraintMessage(
                        stream_id=message.stream_id,
                        time=message.time,
                        lower=0.0,
                        upper=0.0,
                        assumed_inside=True,
                    )
                )
        finally:
            self.depth -= 1


@given(schedules(), latency_models())
@settings(max_examples=40, deadline=None)
def test_deferred_delivery_discipline_never_reentered(schedule, model):
    engine = SimulationEngine()
    ledger = MessageLedger()
    channel = LatencyChannel(ledger, engine, model)
    host = ReentrancyProbe(channel)

    def reactive_source(stream_id):
        # Every constraint triggers a self-correcting update, the
        # adversarial cascade for the delivery discipline.
        def handle(message):
            if ledger.count(MessageKind.UPDATE) < 80:
                channel.send_to_server(
                    UpdateMessage(
                        stream_id=stream_id, time=message.time, value=1.0
                    )
                )

        return handle

    for i in range(N_STREAMS):
        channel.bind_source(i, reactive_source(i))
    for time, stream_id, _ in schedule:
        engine.schedule_at(
            time,
            lambda s=stream_id, t=time: channel.send_to_server(
                UpdateMessage(stream_id=s, time=t, value=0.0)
            ),
        )
    engine.run()
    channel.drain_in_flight()
    assert host.max_depth <= 1
    assert channel.in_flight_count == 0
