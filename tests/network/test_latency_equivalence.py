"""The differential contract of the latency-modeled channel:

``LatencyChannel(latency=0)`` — a genuinely different code path from the
synchronous channel (its own send routing, FIFO bookkeeping, drain
hooks) — must produce **byte-identical message ledgers** and final
answers wherever the synchronous channel runs:

* every scalar protocol over the figure 01 / 09–15 smoke workloads,
* all six spatial ``-2d`` protocols over the moving-objects workloads,
* the value-window stack,

each across ``{single, sharded(2)}`` topologies and ``{event, batch}``
replay modes.  The latency analogue of the sharded-equivalence grids:
those suites prove sharded == single and batch == event for the
synchronous channel, so every latency-0 combination here is compared
against one cached synchronous single-server baseline per (workload,
protocol).

This suite is one half of the staleness harness: any protocol bug that
only manifests *after* staleness begins is deliberately classified
inherent by the checker (see ``repro.correctness.staleness``), because
this suite's byte-identity at latency 0 is the discriminating oracle.
"""

import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.experiments import (
    figure01,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.base import Profile
from repro.queries.knn import KnnQuery, TopKQuery
from repro.queries.range_query import RangeQuery
from repro.spatial.geometry import BoxRegion
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance


def _smoke(figure_module):
    return figure_module._PROFILES[Profile.SMOKE]


def _workloads() -> dict[str, Workload]:
    """One workload per figure, from the figures' own smoke parameters
    (the corpus of ``tests/api/test_sharded_equivalence.py``)."""
    workloads = {}
    for name, module in [
        ("figure01", figure01),
        ("figure12", figure12),
        ("figure14", figure14),
        ("figure15", figure15),
    ]:
        params = _smoke(module)
        workloads[name] = Workload.synthetic(
            n_streams=params["n_streams"],
            horizon=params["horizon"],
            seed=0,
        )
    params = _smoke(figure13)
    workloads["figure13"] = Workload.synthetic(
        n_streams=params["n_streams"],
        horizon=params["horizon"],
        sigma=params["sigma_values"][-1],
        seed=0,
    )
    for name, module in [("figure09", figure09), ("figure10", figure10)]:
        params = _smoke(module)
        workloads[name] = Workload.tcp(
            n_subnets=params["n_subnets"],
            n_connections=params["n_connections"],
            days=params["days"],
            seed=0,
        )
    params = _smoke(figure11)
    n_max = max(params["stream_counts"])
    workloads["figure11"] = Workload.tcp(
        n_subnets=n_max,
        n_connections=n_max * params["connections_per_stream"],
        days=params["days"],
        seed=0,
    )
    return workloads


WORKLOADS = _workloads()

SCALAR_SPECS = {
    "rtp": QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=5),
        tolerance=RankTolerance(k=5, r=3),
    ),
    "zt-nrp": QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0)),
    "ft-nrp": QuerySpec(
        protocol="ft-nrp",
        query=RangeQuery(400.0, 600.0),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
    "zt-rp": QuerySpec(protocol="zt-rp", query=KnnQuery(q=500.0, k=5)),
    "ft-rp": QuerySpec(
        protocol="ft-rp",
        query=KnnQuery(q=500.0, k=5),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
}

QUERY_BOX = BoxRegion([300.0, 300.0], [700.0, 700.0])
CENTER = (500.0, 500.0)
SPATIAL_SPECS = {
    "no-filter-2d": QuerySpec(
        protocol="no-filter-2d", query=SpatialRangeQuery(QUERY_BOX)
    ),
    "zt-nrp-2d": QuerySpec(
        protocol="zt-nrp-2d", query=SpatialRangeQuery(QUERY_BOX)
    ),
    "ft-nrp-2d": QuerySpec(
        protocol="ft-nrp-2d",
        query=SpatialRangeQuery(QUERY_BOX),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
    "rtp-2d": QuerySpec(
        protocol="rtp-2d",
        query=SpatialKnnQuery(CENTER, 5),
        tolerance=RankTolerance(k=5, r=3),
    ),
    "zt-rp-2d": QuerySpec(
        protocol="zt-rp-2d", query=SpatialKnnQuery(CENTER, 5)
    ),
    "ft-rp-2d": QuerySpec(
        protocol="ft-rp-2d",
        query=SpatialKnnQuery(CENTER, 5),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
}
SPATIAL_WORKLOAD = Workload.moving_objects(
    n_objects=80, horizon=120.0, seed=3
)

#: The latency-0 grid each (workload, protocol) pair must collapse on.
COMBOS = [
    ("single", "event"),
    ("single", "batch"),
    ("sharded2", "event"),
    ("sharded2", "batch"),
]


def _deployment(topology: str, mode: str, latency) -> Deployment:
    if topology == "single":
        return Deployment.single(replay_mode=mode, latency=latency)
    assert topology == "sharded2"
    return Deployment.sharded(2, replay_mode=mode, latency=latency)


_BASELINES: dict = {}


def _baseline(kind, name, spec, workload):
    """The synchronous single-server run, computed once per pair."""
    key = (kind, name)
    if key not in _BASELINES:
        _BASELINES[key] = Engine().run(spec, workload, Deployment.single())
    return _BASELINES[key]


@pytest.mark.parametrize("topology,mode", COMBOS)
@pytest.mark.parametrize("figure", sorted(WORKLOADS))
@pytest.mark.parametrize("protocol", sorted(SCALAR_SPECS))
def test_latency_zero_scalar_ledgers_byte_identical(
    protocol, figure, topology, mode
):
    spec = SCALAR_SPECS[protocol]
    workload = WORKLOADS[figure]
    base = _baseline("scalar", (figure, protocol), spec, workload)
    report = Engine().run(
        spec, workload, _deployment(topology, mode, latency=0.0)
    )
    assert report.ledger == base.ledger, (
        f"{protocol} on {figure} under latency=0 {topology}/{mode} "
        f"diverged from the synchronous channel"
    )
    assert report.final_answer == base.final_answer


@pytest.mark.parametrize("topology,mode", COMBOS)
@pytest.mark.parametrize("protocol", sorted(SPATIAL_SPECS))
def test_latency_zero_spatial_ledgers_byte_identical(
    protocol, topology, mode
):
    spec = SPATIAL_SPECS[protocol]
    base = _baseline("spatial", protocol, spec, SPATIAL_WORKLOAD)
    report = Engine().run(
        spec, SPATIAL_WORKLOAD, _deployment(topology, mode, latency=0.0)
    )
    assert report.ledger == base.ledger, (
        f"{protocol} under latency=0 {topology}/{mode} diverged"
    )
    assert report.final_answer == base.final_answer


@pytest.mark.parametrize("topology", ["single", "sharded2"])
def test_latency_zero_value_window_ledger_byte_identical(topology):
    spec = QuerySpec(
        protocol="value-eps", query=TopKQuery(k=5), options={"eps": 50.0}
    )
    workload = WORKLOADS["figure01"]
    base = _baseline("value", "figure01", spec, workload)
    report = Engine().run(
        spec, workload, _deployment(topology, "auto", latency=0.0)
    )
    assert report.ledger == base.ledger
    assert report.extras["worst_rank"] == base.extras["worst_rank"]


def test_latency_zero_runs_are_violation_free():
    """The other half of the differential oracle: at latency 0 every
    checked protocol still satisfies its tolerance — so any violation a
    latency>0 run observes is attributable to staleness, not the code."""
    engine = Engine()
    workload = WORKLOADS["figure01"]
    for name, spec in SCALAR_SPECS.items():
        report = engine.run(
            spec,
            workload,
            Deployment.single(check_every=1, latency=0.0),
        )
        assert report.tolerance_ok, f"{name}: {report.violations[:3]}"
        assert report.extras["violations_inherent_latency"] == 0
        assert report.extras["violations_protocol_bug"] == 0


def test_multiquery_rejects_latency():
    """The multi-query coordinator bypasses the channel entirely; the
    engine must refuse rather than silently run synchronously."""
    engine = Engine()
    specs = {
        "range": QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))
    }
    with pytest.raises(ValueError, match="multi-query"):
        engine.run_queries(
            specs,
            WORKLOADS["figure01"],
            Deployment.single(latency=0.0),
        )
