"""Round-trip properties of the in-flight wire frames (DESIGN.md §10).

The shard transport's in-flight plane crosses the process boundary as
columnar frames: extracted uplink entries ride an update frame (full
payload), pending downlinks a metadata-only frame.  The plane's merge
key is ``(delivery time, send seq)``, so the codec must preserve the
key columns bit-exactly — including FIFO ties (equal delivery times
ordered by seq) and cross-epoch carryover (an entry packed in a later
epoch keeps the send seq it was enqueued with).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.frames import (
    InFlightFrame,
    pack_in_flight,
    pack_pending,
    unpack_in_flight,
)
from repro.network.messages import ConstraintMessage, UpdateMessage
from repro.spatial.messages import (
    PointUpdateMessage,
    pack_point_in_flight,
    unpack_point_in_flight,
)

finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def heap_entries(draw):
    """Entries in ``(delivery, seq)`` heap order, as the channel emits
    them: delivery times may tie (FIFO ties break on seq), and seqs are
    unique but need not start at zero (cross-epoch carryover keeps the
    seq of the epoch the message was sent in)."""
    n = draw(st.integers(0, 30))
    base_seq = draw(st.integers(0, 10_000))
    seqs = sorted(
        draw(
            st.sets(
                st.integers(base_seq, base_seq + 10_000), min_size=n, max_size=n
            )
        )
    )
    deliveries = sorted(
        draw(
            st.lists(
                st.floats(0.0, 1e6, **finite), min_size=n, max_size=n
            )
        )
    )
    rows = []
    for time, seq in zip(deliveries, seqs):
        rows.append(
            (
                time,
                seq,
                draw(st.integers(0, 99)),
                draw(st.floats(0.0, 1e6, **finite)),
                draw(st.floats(-1e9, 1e9, **finite)),
            )
        )
    return rows


@given(heap_entries())
@settings(max_examples=100, deadline=None)
def test_uplink_frame_round_trips(rows):
    entries = [
        (time, seq, UpdateMessage(stream_id=stream, time=send, value=value))
        for time, seq, stream, send, value in rows
    ]
    frame = pack_in_flight(entries)
    assert isinstance(frame, InFlightFrame)
    assert len(frame) == len(rows)
    assert unpack_in_flight(frame) == rows


@given(heap_entries())
@settings(max_examples=100, deadline=None)
def test_pending_frame_round_trips_metadata_only(rows):
    entries = [
        (time, seq, ConstraintMessage(stream_id=stream, time=send))
        for time, seq, stream, send, _ in rows
    ]
    frame = pack_pending(entries)
    assert frame.values is None
    assert unpack_in_flight(frame) == [
        (time, seq, stream, send, None)
        for time, seq, stream, send, _ in rows
    ]


@given(heap_entries(), st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_point_frame_round_trips(rows, dimension):
    points = [
        np.linspace(send, send + dimension, num=dimension)
        for _, _, _, send, _ in rows
    ]
    entries = [
        (
            time,
            seq,
            PointUpdateMessage(stream_id=stream, time=send, point=point),
        )
        for (time, seq, stream, send, _), point in zip(rows, points)
    ]
    frame = pack_point_in_flight(entries, dimension)
    decoded = unpack_point_in_flight(frame)
    assert len(decoded) == len(rows)
    for (time, seq, stream, send, _), point, row in zip(
        rows, points, decoded
    ):
        assert row[:4] == (time, seq, stream, send)
        assert row[4].shape == (dimension,)
        assert np.array_equal(row[4], point)


def test_empty_frames_round_trip():
    for frame in (pack_in_flight([]), pack_pending([])):
        assert len(frame) == 0
        assert unpack_in_flight(frame) == []
    point_frame = pack_point_in_flight([], 2)
    assert len(point_frame) == 0
    assert unpack_point_in_flight(point_frame) == []


def test_fifo_ties_keep_seq_order():
    # Two messages of one flow delivered at the same instant: the frame
    # must preserve the (delivery, seq) order the heap popped them in.
    entries = [
        (5.0, 7, UpdateMessage(stream_id=1, time=4.0, value=1.0)),
        (5.0, 9, UpdateMessage(stream_id=1, time=4.5, value=2.0)),
    ]
    decoded = unpack_in_flight(pack_in_flight(entries))
    assert [(seq, value) for _, seq, _, _, value in decoded] == [
        (7, 1.0),
        (9, 2.0),
    ]


def test_cross_epoch_carryover_keeps_send_seqs():
    # An entry extracted two epochs after it was sent still carries its
    # original channel seq — the plane's FIFO tiebreaker spans epochs.
    early = (9.0, 3, UpdateMessage(stream_id=0, time=1.0, value=0.5))
    late = (9.5, 41, UpdateMessage(stream_id=0, time=8.0, value=1.5))
    decoded = unpack_in_flight(pack_in_flight([early, late]))
    assert [seq for _, seq, _, _, _ in decoded] == [3, 41]
    assert [send for _, _, _, send, _ in decoded] == [1.0, 8.0]
