"""Unit tests for the message vocabulary."""

import dataclasses
import math

import pytest

from repro.network.messages import (
    ConstraintMessage,
    MessageKind,
    ProbeReplyMessage,
    ProbeRequestMessage,
    UpdateMessage,
)


def test_kinds_are_distinct():
    kinds = {
        UpdateMessage(0, 0.0, 1.0).kind,
        ProbeRequestMessage(0, 0.0).kind,
        ProbeReplyMessage(0, 0.0, 1.0).kind,
        ConstraintMessage(0, 0.0).kind,
    }
    assert kinds == set(MessageKind)


def test_uplink_classification():
    assert MessageKind.UPDATE.is_uplink
    assert MessageKind.PROBE_REPLY.is_uplink
    assert not MessageKind.PROBE_REQUEST.is_uplink
    assert not MessageKind.CONSTRAINT.is_uplink


def test_messages_are_frozen():
    message = UpdateMessage(stream_id=1, time=2.0, value=3.0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        message.value = 4.0


def test_constraint_defaults_are_false_positive_filter():
    message = ConstraintMessage(stream_id=0, time=0.0)
    assert message.lower == -math.inf
    assert message.upper == math.inf
    assert message.assumed_inside is None


def test_constraint_carries_belief():
    message = ConstraintMessage(
        stream_id=0, time=0.0, lower=1.0, upper=2.0, assumed_inside=True
    )
    assert message.assumed_inside is True


def test_update_carries_value_and_metadata():
    message = UpdateMessage(stream_id=7, time=1.5, value=9.0)
    assert (message.stream_id, message.time, message.value) == (7, 1.5, 9.0)
