"""Unit tests for the synchronous channel."""

import pytest

from repro.network.accounting import MessageLedger
from repro.network.channel import Channel
from repro.network.messages import (
    MessageKind,
    ProbeRequestMessage,
    UpdateMessage,
)


def test_update_reaches_server_and_is_recorded(wired_channel):
    channel, ledger, sources, received = wired_channel
    channel.send_to_server(UpdateMessage(stream_id=0, time=1.0, value=5.0))
    assert len(received) == 1
    assert received[0].value == 5.0
    assert ledger.count(MessageKind.UPDATE) == 1


def test_probe_request_routes_to_right_source(wired_channel):
    channel, ledger, sources, received = wired_channel
    channel.send_to_source(ProbeRequestMessage(stream_id=2, time=0.0))
    # Source 2 replies with its current value (20.0).
    assert len(received) == 1
    assert received[0].kind is MessageKind.PROBE_REPLY
    assert received[0].value == 20.0
    assert ledger.count(MessageKind.PROBE_REQUEST) == 1
    assert ledger.count(MessageKind.PROBE_REPLY) == 1


def test_send_without_server_raises():
    channel = Channel(MessageLedger())
    with pytest.raises(RuntimeError):
        channel.send_to_server(UpdateMessage(0, 0.0, 1.0))


def test_send_to_unknown_source_raises(wired_channel):
    channel, *_ = wired_channel
    with pytest.raises(RuntimeError):
        channel.send_to_source(ProbeRequestMessage(stream_id=99, time=0.0))


def test_source_ids_sorted(wired_channel):
    channel, *_ = wired_channel
    assert channel.source_ids == [0, 1, 2]


def test_taps_observe_messages(wired_channel):
    channel, ledger, sources, received = wired_channel
    seen = []
    channel.add_tap(seen.append)
    channel.send_to_server(UpdateMessage(stream_id=1, time=1.0, value=2.0))
    assert [m.stream_id for m in seen] == [1]
    channel.remove_tap(seen.append)
    channel.send_to_server(UpdateMessage(stream_id=2, time=2.0, value=3.0))
    assert len(seen) == 1


def test_remove_tap_is_idempotent(wired_channel):
    """Regression: a mid-drain bailout may detach a tap twice; the second
    detach (and detaching a never-attached tap) must be a no-op, not a
    ValueError."""
    channel, *_ = wired_channel
    tap = lambda message: None  # noqa: E731
    channel.add_tap(tap)
    channel.remove_tap(tap)
    channel.remove_tap(tap)  # second detach: no-op
    channel.remove_tap(lambda message: None)  # never attached: no-op
    # The channel still works after the redundant detaches.
    channel.send_to_server(UpdateMessage(stream_id=0, time=1.0, value=1.0))
