"""Unit tests for the message ledger."""

import pytest

from repro.network.accounting import MessageLedger, Phase
from repro.network.messages import MessageKind, UpdateMessage


def test_starts_in_initialization_phase():
    assert MessageLedger().phase is Phase.INITIALIZATION


def test_record_charges_current_phase():
    ledger = MessageLedger()
    ledger.record(UpdateMessage(0, 0.0, 1.0))
    ledger.phase = Phase.MAINTENANCE
    ledger.record(UpdateMessage(0, 1.0, 2.0))
    ledger.record(UpdateMessage(1, 1.0, 2.0))
    assert ledger.initialization_total == 1
    assert ledger.maintenance_total == 2
    assert ledger.total == 3


def test_count_by_kind_and_phase():
    ledger = MessageLedger()
    ledger.record_kind(MessageKind.CONSTRAINT, 5)
    ledger.phase = Phase.MAINTENANCE
    ledger.record_kind(MessageKind.CONSTRAINT, 2)
    assert ledger.count(MessageKind.CONSTRAINT) == 7
    assert ledger.count(MessageKind.CONSTRAINT, Phase.INITIALIZATION) == 5
    assert ledger.count(MessageKind.CONSTRAINT, Phase.MAINTENANCE) == 2


def test_record_kind_rejects_negative():
    with pytest.raises(ValueError):
        MessageLedger().record_kind(MessageKind.UPDATE, -1)


def test_snapshot_is_immutable_copy():
    ledger = MessageLedger()
    ledger.phase = Phase.MAINTENANCE
    ledger.record_kind(MessageKind.UPDATE, 3)
    snapshot = ledger.snapshot()
    ledger.record_kind(MessageKind.UPDATE, 10)
    assert snapshot.maintenance_total == 3
    assert snapshot.maintenance_of(MessageKind.UPDATE) == 3
    assert snapshot.maintenance_of(MessageKind.CONSTRAINT) == 0


def test_snapshot_totals():
    ledger = MessageLedger()
    ledger.record_kind(MessageKind.PROBE_REQUEST, 4)
    ledger.record_kind(MessageKind.PROBE_REPLY, 4)
    ledger.phase = Phase.MAINTENANCE
    ledger.record_kind(MessageKind.UPDATE, 1)
    snapshot = ledger.snapshot()
    assert snapshot.initialization_total == 8
    assert snapshot.maintenance_total == 1
    assert snapshot.total == 9


def test_reset_clears_counts_and_phase():
    ledger = MessageLedger()
    ledger.phase = Phase.MAINTENANCE
    ledger.record_kind(MessageKind.UPDATE, 3)
    ledger.reset()
    assert ledger.total == 0
    assert ledger.phase is Phase.INITIALIZATION
