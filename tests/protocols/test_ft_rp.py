"""Unit + randomized tests for FT-RP (Sections 5.2.2-5.2.3)."""

import pytest

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.ft_rp import FractionToleranceKnnProtocol
from repro.protocols.zt_rp import ZeroToleranceKnnProtocol
from repro.queries.knn import KnnQuery, TopKQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.knn_fraction import RhoPolicy


def run_ftrp(trace, query, eps, policy=RhoPolicy.BALANCED, strict=True):
    tolerance = FractionTolerance(eps, eps)
    protocol = FractionToleranceKnnProtocol(query, tolerance, policy=policy)
    result = run_protocol(
        trace,
        protocol,
        tolerance=tolerance,
        config=RunConfig(check_every=1, strict=strict),
    )
    return result, protocol


class TestCorrectness:
    @pytest.mark.parametrize("eps", [0.0, 0.1, 0.2, 0.3, 0.45])
    def test_tolerance_held(self, small_trace, eps):
        result, _ = run_ftrp(small_trace, KnnQuery(500.0, 8), eps)
        assert result.tolerance_ok

    @pytest.mark.parametrize("policy", list(RhoPolicy))
    def test_all_policies_sound(self, small_trace, policy):
        result, _ = run_ftrp(
            small_trace, KnnQuery(500.0, 10), 0.3, policy=policy
        )
        assert result.tolerance_ok

    @pytest.mark.parametrize("seed", range(5))
    def test_many_seeds(self, seed):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=60, horizon=250.0, seed=seed)
        )
        result, _ = run_ftrp(trace, KnnQuery(450.0, 6), 0.25)
        assert result.tolerance_ok

    def test_topk_variant(self, small_trace):
        result, _ = run_ftrp(small_trace, TopKQuery(k=8), 0.3)
        assert result.tolerance_ok

    def test_answer_size_stays_in_live_bounds(self, small_trace):
        _, protocol = run_ftrp(small_trace, KnnQuery(500.0, 10), 0.3)
        assert (
            protocol.effective_size_min
            <= len(protocol.answer)
            <= protocol.effective_size_max
        )


class TestStructure:
    def test_zero_tolerance_has_no_silencers(self, small_trace):
        _, protocol = run_ftrp(small_trace, KnnQuery(500.0, 5), 0.0)
        assert protocol.rho_plus == 0.0
        assert protocol.rho_minus == 0.0
        assert protocol.size_min == protocol.size_max == 5

    def test_zero_tolerance_matches_zt_rp_cost(self, small_trace):
        query = KnnQuery(500.0, 5)
        ft_result, _ = run_ftrp(small_trace, query, 0.0)
        zt_result = run_protocol(
            small_trace, ZeroToleranceKnnProtocol(KnnQuery(500.0, 5))
        )
        # Both recompute on every crossing; FT-RP probes all n (it cannot
        # reuse the updater's value in its generic resolve), ZT-RP probes
        # n - 1 — allow that slack.
        assert (
            abs(ft_result.maintenance_messages - zt_result.maintenance_messages)
            <= 2 * zt_result.extras.get("recomputations", 0) + 2
        )

    def test_tolerance_cuts_cost_dramatically(self, small_trace):
        query_factory = lambda: KnnQuery(500.0, 10)
        zero, _ = run_ftrp(small_trace, query_factory(), 0.0)
        tolerant, _ = run_ftrp(small_trace, query_factory(), 0.3)
        assert tolerant.maintenance_messages < zero.maintenance_messages / 2

    def test_recomputations_counted(self, small_trace):
        _, protocol = run_ftrp(small_trace, KnnQuery(500.0, 5), 0.1)
        assert protocol.recomputations >= 0
        assert isinstance(protocol.recomputations, int)

    def test_effective_bounds_relax_as_pools_drain(self):
        tolerance = FractionTolerance(0.3, 0.3)
        protocol = FractionToleranceKnnProtocol(KnnQuery(0.0, 100), tolerance)
        protocol._fp_pool.extend(range(5))
        protocol._fn_pool.extend(range(100, 103))
        tight_max = protocol.effective_size_max
        tight_min = protocol.effective_size_min
        protocol._fn_pool.clear()
        protocol._fp_pool.clear()
        assert protocol.effective_size_max > tight_max
        assert protocol.effective_size_min < tight_min
        # With no silencers the live bounds equal the paper's (Eqs. 7, 9).
        assert protocol.effective_size_max == protocol.size_max
        assert protocol.effective_size_min == protocol.size_min

    def test_too_few_streams_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            run_ftrp(tiny_trace, KnnQuery(0.0, 25), 0.1)


class TestPaperObservation:
    def test_small_k_small_eps_is_poor(self):
        """Figure 15's k=20 note: at small k and tolerance, FT-RP buys
        little over ZT-RP because hardly any silencers are allocated."""
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=120, horizon=200.0, seed=4)
        )
        tolerance = FractionTolerance(0.1, 0.1)
        protocol = FractionToleranceKnnProtocol(KnnQuery(500.0, 4), tolerance)
        assert protocol.rho_plus * 4 < 1  # floor() -> zero FP silencers
