"""Property-based protocol tests: random workloads, invariant checks.

Hypothesis generates small adversarial traces (arbitrary jump sizes —
harsher than the Gaussian workloads) and every protocol must hold its
tolerance at every instant.

All values within a trace are drawn *distinct*, matching the paper's
continuous-data model: ``Deploy_bound`` places the bound R "halfway
between" the (k+r)-th and (k+r+1)-st ranked objects, which presupposes
their distances differ.  With exact ties no closed bound can separate
them, and the rank-based protocols can be defeated — a zero-probability
event for continuous data, demonstrated and documented in
``test_exact_ties_defeat_bound_separation`` below.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.protocols.ft_rp import FractionToleranceKnnProtocol
from repro.protocols.rtp import RankToleranceProtocol
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.queries.knn import KnnQuery
from repro.queries.range_query import RangeQuery
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

CHECKED = RunConfig(check_every=1, strict=True)

N_STREAMS = 14


@st.composite
def adversarial_traces(draw):
    """A small trace with arbitrary jumps and globally distinct values."""
    n_records = draw(st.integers(0, 40))
    # Unique by distance from the k-NN query point (500), so neither
    # values nor distances ever tie — the continuous-data model.
    pool = draw(
        st.lists(
            st.floats(0.0, 1000.0, allow_nan=False),
            min_size=N_STREAMS + n_records,
            max_size=N_STREAMS + n_records,
            unique_by=lambda v: abs(v - 500.0),
        )
    )
    initial, values = pool[:N_STREAMS], pool[N_STREAMS:]
    ids = draw(
        st.lists(
            st.integers(0, N_STREAMS - 1),
            min_size=n_records,
            max_size=n_records,
        )
    )
    times = np.arange(1.0, n_records + 1.0)
    return StreamTrace(
        initial_values=np.array(initial),
        times=times,
        stream_ids=np.array(ids, dtype=np.int64),
        values=np.array(values),
        horizon=float(n_records + 1),
    )


@given(adversarial_traces())
@settings(max_examples=60, deadline=None)
def test_zt_nrp_always_exact(trace):
    result = run_protocol(
        trace,
        ZeroToleranceRangeProtocol(RangeQuery(300.0, 700.0)),
        config=CHECKED,
    )
    assert result.tolerance_ok


@given(adversarial_traces(), st.sampled_from([0.1, 0.25, 0.45]))
@settings(max_examples=60, deadline=None)
def test_ft_nrp_holds_tolerance(trace, eps):
    tolerance = FractionTolerance(eps, eps)
    result = run_protocol(
        trace,
        FractionToleranceRangeProtocol(RangeQuery(300.0, 700.0), tolerance),
        tolerance=tolerance,
        config=CHECKED,
    )
    assert result.tolerance_ok


@given(adversarial_traces(), st.integers(0, 4))
@settings(max_examples=60, deadline=None)
def test_rtp_holds_tolerance(trace, r):
    k = 3
    tolerance = RankTolerance(k=k, r=r)
    result = run_protocol(
        trace,
        RankToleranceProtocol(KnnQuery(500.0, k), tolerance),
        tolerance=tolerance,
        config=CHECKED,
    )
    assert result.tolerance_ok
    assert len(result.final_answer) == k


@given(adversarial_traces(), st.sampled_from([0.1, 0.3]))
@settings(max_examples=60, deadline=None)
def test_ft_rp_holds_tolerance(trace, eps):
    tolerance = FractionTolerance(eps, eps)
    result = run_protocol(
        trace,
        FractionToleranceKnnProtocol(KnnQuery(500.0, 4), tolerance),
        tolerance=tolerance,
        config=CHECKED,
    )
    assert result.tolerance_ok


def test_exact_ties_defeat_bound_separation():
    """Documented limitation: with *exactly tied* distances the bound R
    cannot pass strictly between the (k+r)-th and (k+r+1)-st objects.

    Deploy_bound's "halfway between" placement (Figure 5) presupposes the
    two distances differ — true with probability 1 for continuous data,
    which is the paper's implicit model.  When they tie, the deployed
    closed interval necessarily *contains* the (k+r+1)-st object, leaving
    an inside-R stream untracked; from there the rank guarantee can lapse
    without any filter firing (hypothesis exhibited such traces before
    the strategies were constrained to distance-distinct values).  This
    test pins the degenerate-separation mechanism so a future mitigation
    (e.g. open-interval filters) is measurable.
    """
    k, r = 2, 0
    # Streams 0 and 3 are exactly tied at the eps/eps+1 rank boundary.
    initial = np.array([440.0, 490.0, 505.0, 560.0, 900.0, 100.0])
    trace = StreamTrace(
        initial_values=initial,
        times=np.array([]),
        stream_ids=np.array([]),
        values=np.array([]),
        horizon=1.0,
    )
    tolerance = RankTolerance(k=k, r=r)
    protocol = RankToleranceProtocol(KnnQuery(500.0, k), tolerance)
    run_protocol(trace, protocol, tolerance=tolerance)
    # Ranks by |v - 500|: s2 (5), s1 (10), then s0 and s3 tied at 60.
    # eps = 2, so R should separate rank 2 (s1) from rank 3 (s0) — that
    # works here; but re-deploying with the tie *at* the boundary cannot:
    lower, upper = protocol.region
    assert lower <= 490.0 <= upper          # rank 2 inside
    assert not (lower <= 440.0 <= upper)    # rank 3 excluded (no tie yet)

    # Now force the tie at the eps boundary: k=2, r=1 -> eps=3, and the
    # 3rd and 4th ranked objects (s0 and s3) are exactly tied.
    tolerance = RankTolerance(k=2, r=1)
    protocol = RankToleranceProtocol(KnnQuery(500.0, 2), tolerance)
    run_protocol(trace, protocol, tolerance=tolerance)
    lower, upper = protocol.region
    inside = [v for v in initial if lower <= v <= upper]
    # The closed bound cannot exclude the tied 4th object: both tied
    # streams are inside, so eps + 1 = 4 objects sit within R.
    assert len(inside) == protocol.eps + 1
    assert 440.0 in inside and 560.0 in inside
