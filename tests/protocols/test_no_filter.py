"""Unit tests for the no-filter baseline."""

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.no_filter import NoFilterProtocol
from repro.queries.knn import TopKQuery
from repro.queries.range_query import RangeQuery


def test_cost_equals_update_count(small_trace):
    result = run_protocol(small_trace, NoFilterProtocol(RangeQuery(400, 600)))
    assert result.maintenance_messages == small_trace.n_records
    assert result.update_messages == small_trace.n_records
    assert result.probe_messages == 0
    assert result.constraint_messages == 0


def test_range_answers_are_exact(small_trace):
    result = run_protocol(
        small_trace,
        NoFilterProtocol(RangeQuery(400, 600)),
        config=RunConfig(check_every=1, strict=True),
    )
    assert result.tolerance_ok


def test_rank_answers_are_exact(small_trace):
    result = run_protocol(
        small_trace,
        NoFilterProtocol(TopKQuery(k=7)),
        config=RunConfig(check_every=1, strict=True),
    )
    assert result.tolerance_ok
    assert len(result.final_answer) == 7


def test_rank_answer_cache_invalidation(manual_trace):
    protocol = NoFilterProtocol(TopKQuery(k=1))
    result = run_protocol(manual_trace, protocol)
    # Final values: [4, 30, 18, 13] -> top-1 is stream 1.
    assert result.final_answer == frozenset({1})


def test_initialization_probes_all_streams(small_trace):
    result = run_protocol(small_trace, NoFilterProtocol(RangeQuery(0, 1)))
    # 2 messages per probe during initialization.
    assert result.initialization_messages == 2 * small_trace.n_streams


def test_answer_before_initialize_is_empty():
    assert NoFilterProtocol(RangeQuery(0, 1)).answer == frozenset()
