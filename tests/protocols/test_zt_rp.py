"""Unit tests for ZT-RP (zero-tolerance k-NN protocol)."""

import numpy as np
import pytest

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.zt_rp import ZeroToleranceKnnProtocol
from repro.queries.knn import KnnQuery, TopKQuery
from repro.streams.trace import StreamTrace


def test_answers_always_exact(small_trace):
    result = run_protocol(
        small_trace,
        ZeroToleranceKnnProtocol(KnnQuery(500.0, 5)),
        config=RunConfig(check_every=1, strict=True),
    )
    assert result.tolerance_ok


def test_topk_answers_always_exact(small_trace):
    result = run_protocol(
        small_trace,
        ZeroToleranceKnnProtocol(TopKQuery(k=6)),
        config=RunConfig(check_every=1, strict=True),
    )
    assert result.tolerance_ok


def test_too_few_streams_rejected():
    trace = StreamTrace(
        initial_values=np.array([1.0, 2.0]),
        times=np.array([]),
        stream_ids=np.array([]),
        values=np.array([]),
        horizon=1.0,
    )
    with pytest.raises(ValueError):
        run_protocol(trace, ZeroToleranceKnnProtocol(KnnQuery(0.0, 2)))


def test_non_crossing_updates_are_free():
    initial = np.array([500.0, 510.0, 490.0, 800.0, 900.0])
    trace = StreamTrace(
        initial_values=initial,
        times=np.array([1.0, 2.0]),
        stream_ids=np.array([3, 4]),
        values=np.array([850.0, 950.0]),  # stay far outside R
        horizon=3.0,
    )
    result = run_protocol(
        trace, ZeroToleranceKnnProtocol(KnnQuery(500.0, 2))
    )
    assert result.maintenance_messages == 0


def test_each_crossing_costs_about_3n():
    n = 5
    initial = np.array([500.0, 510.0, 490.0, 800.0, 900.0])
    trace = StreamTrace(
        initial_values=initial,
        times=np.array([1.0]),
        stream_ids=np.array([3]),
        values=np.array([505.0]),  # crosses into R
        horizon=2.0,
    )
    protocol = ZeroToleranceKnnProtocol(KnnQuery(500.0, 2))
    result = run_protocol(trace, protocol)
    assert protocol.recomputations == 1
    # 1 update + 2(n-1) probe messages + n deployments.
    assert result.maintenance_messages == 1 + 2 * (n - 1) + n


def test_region_separates_k_from_k_plus_1():
    initial = np.array([500.0, 505.0, 520.0, 480.0])
    trace = StreamTrace(
        initial_values=initial,
        times=np.array([]),
        stream_ids=np.array([]),
        values=np.array([]),
        horizon=1.0,
    )
    protocol = ZeroToleranceKnnProtocol(KnnQuery(500.0, 2))
    run_protocol(trace, protocol)
    lower, upper = protocol.region
    # Answer {0, 1} (distances 0, 5); 3rd closest is 480 (distance 20).
    assert protocol.answer == frozenset({0, 1})
    assert lower <= 505.0 <= upper
    assert not (lower <= 480.0 <= upper)
