"""Unit + randomized tests for RTP (Figure 5)."""

import numpy as np
import pytest

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.no_filter import NoFilterProtocol
from repro.protocols.rtp import RankToleranceProtocol
from repro.queries.knn import KMinQuery, KnnQuery, TopKQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.streams.trace import StreamTrace
from repro.tolerance.rank_tolerance import RankTolerance


def run_rtp(trace, query, r, strict=True):
    tolerance = RankTolerance(k=query.k, r=r)
    protocol = RankToleranceProtocol(query, tolerance)
    result = run_protocol(
        trace,
        protocol,
        tolerance=tolerance,
        config=RunConfig(check_every=1, strict=strict),
    )
    return result, protocol


class TestConstruction:
    def test_mismatched_k_rejected(self):
        with pytest.raises(ValueError):
            RankToleranceProtocol(KnnQuery(0.0, 3), RankTolerance(k=5, r=0))

    def test_too_few_streams_rejected(self):
        trace = StreamTrace(
            initial_values=np.array([1.0, 2.0, 3.0]),
            times=np.array([]),
            stream_ids=np.array([]),
            values=np.array([]),
            horizon=1.0,
        )
        with pytest.raises(ValueError):
            run_rtp(trace, KnnQuery(0.0, 2), r=1)  # eps = 3 = n


class TestCorrectness:
    @pytest.mark.parametrize("r", [0, 1, 3, 8])
    def test_knn_tolerance_held(self, small_trace, r):
        result, _ = run_rtp(small_trace, KnnQuery(500.0, 5), r)
        assert result.tolerance_ok
        assert len(result.final_answer) == 5

    @pytest.mark.parametrize("query_factory", [TopKQuery, KMinQuery])
    def test_transforms_tolerance_held(self, small_trace, query_factory):
        result, _ = run_rtp(small_trace, query_factory(k=4), r=2)
        assert result.tolerance_ok

    @pytest.mark.parametrize("seed", range(5))
    def test_many_seeds(self, seed):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=50, horizon=250.0, seed=seed)
        )
        result, _ = run_rtp(trace, KnnQuery(450.0, 4), r=3)
        assert result.tolerance_ok

    def test_off_center_query_point(self, small_trace):
        result, _ = run_rtp(small_trace, KnnQuery(120.0, 3), r=2)
        assert result.tolerance_ok

    def test_r_zero_is_exact_up_to_k(self, small_trace):
        """r = 0 demands the answer equal the true top-k exactly."""
        result, _ = run_rtp(small_trace, KnnQuery(500.0, 5), r=0)
        assert result.tolerance_ok


class TestInvariants:
    def test_answer_subset_of_tracked(self, small_trace):
        _, protocol = run_rtp(small_trace, KnnQuery(500.0, 5), r=3)
        assert protocol.answer <= protocol.tracked
        assert len(protocol.tracked) <= protocol.eps
        assert len(protocol.answer) == 5

    def test_region_covers_tracked_values(self, small_trace):
        _, protocol = run_rtp(small_trace, KnnQuery(500.0, 5), r=3)
        assert protocol.region is not None
        lower, upper = protocol.region
        assert lower < upper

    def test_eps_property(self):
        protocol = RankToleranceProtocol(
            KnnQuery(0.0, 4), RankTolerance(k=4, r=3)
        )
        assert protocol.eps == 7


class TestCostShape:
    def test_larger_r_needs_fewer_messages_on_average(self):
        totals = {}
        for r in (0, 10):
            total = 0
            for seed in range(3):
                trace = generate_synthetic_trace(
                    SyntheticConfig(n_streams=80, horizon=250.0, seed=seed)
                )
                result, _ = run_rtp(trace, KnnQuery(500.0, 5), r, strict=False)
                total += result.maintenance_messages
            totals[r] = total
        assert totals[10] < totals[0]

    def test_moderate_r_beats_no_filter(self):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=100, horizon=300.0, seed=2)
        )
        rtp, _ = run_rtp(trace, KnnQuery(500.0, 5), r=8)
        baseline = run_protocol(trace, NoFilterProtocol(KnnQuery(500.0, 5)))
        assert rtp.maintenance_messages < baseline.maintenance_messages

    def test_quiet_streams_cost_nothing(self):
        """Objects far from R moving around never trigger messages."""
        initial = np.array([500.0, 505.0, 495.0, 510.0, 100.0, 900.0])
        trace = StreamTrace(
            initial_values=initial,
            times=np.array([1.0, 2.0, 3.0]),
            stream_ids=np.array([4, 5, 4]),
            values=np.array([120.0, 880.0, 90.0]),  # far away wiggles
            horizon=4.0,
        )
        result, _ = run_rtp(trace, KnnQuery(500.0, 2), r=1)
        assert result.maintenance_messages == 0


class TestMaintenanceCases:
    def test_case1_leave_tracked_not_answer(self):
        """A tracked non-answer object leaving R costs one update only."""
        initial = np.array([500.0, 501.0, 499.0, 503.0, 800.0])
        # k=2, r=1 -> eps=3; X = {0,1,2}, A = {0,2} (closest to 500).
        trace = StreamTrace(
            initial_values=initial,
            times=np.array([1.0]),
            stream_ids=np.array([3]),
            values=np.array([900.0]),
            horizon=2.0,
        )
        # Stream 3 is ranked 4th: outside X; moving to 900 crosses nothing
        # relevant... choose stream 1 instead:
        trace = StreamTrace(
            initial_values=initial,
            times=np.array([1.0]),
            stream_ids=np.array([1]),
            values=np.array([900.0]),
            horizon=2.0,
        )
        result, protocol = run_rtp(trace, KnnQuery(500.0, 2), r=1)
        assert result.maintenance_messages == 1
        assert 1 not in protocol.tracked
        assert result.tolerance_ok

    def test_case2_leave_answer_promotes_from_x(self):
        initial = np.array([500.0, 501.0, 499.0, 503.0, 800.0])
        trace = StreamTrace(
            initial_values=initial,
            times=np.array([1.0]),
            stream_ids=np.array([0]),
            values=np.array([900.0]),  # answer member leaves
            horizon=2.0,
        )
        result, protocol = run_rtp(trace, KnnQuery(500.0, 2), r=1)
        # X - A = {1} replaces stream 0; one update, no probes.
        assert result.maintenance_messages == 1
        assert protocol.answer == frozenset({1, 2})

    def test_case3_enter_with_room(self):
        """An object entering R while |X| < eps is tracked for free."""
        initial = np.array([500.0, 501.0, 499.0, 503.0, 800.0])
        # First stream 1 leaves (X: {0,2}), then stream 3 re-enters close.
        trace = StreamTrace(
            initial_values=initial,
            times=np.array([1.0, 2.0]),
            stream_ids=np.array([1, 1]),
            values=np.array([900.0, 500.5]),
            horizon=3.0,
        )
        result, protocol = run_rtp(trace, KnnQuery(500.0, 2), r=1)
        assert result.tolerance_ok
        assert 1 in protocol.tracked
        assert result.maintenance_messages == 2  # two updates, no resolution

    def test_case3_overflow_recomputes_bound(self):
        """An object entering a full X forces probing + redeployment."""
        initial = np.array([500.0, 501.0, 499.0, 503.0, 800.0])
        trace = StreamTrace(
            initial_values=initial,
            times=np.array([1.0]),
            stream_ids=np.array([4]),
            values=np.array([500.2]),  # barges into full X
            horizon=2.0,
        )
        result, protocol = run_rtp(trace, KnnQuery(500.0, 2), r=1)
        assert result.tolerance_ok
        # 1 update + probes of X members (3 x 2) + broadcast (5).
        assert result.probe_messages == 6
        assert result.constraint_messages == 5
        assert 4 in protocol.answer  # it is now the closest

    def test_case2_expansion_when_x_equals_a(self):
        """With no spare tracked object, the expanding search probes
        outward by stale rank and redeploys."""
        initial = np.array([500.0, 501.0, 480.0, 520.0, 800.0])
        # k=2, r=0 -> eps=2, X = A = {0, 1}.
        trace = StreamTrace(
            initial_values=initial,
            times=np.array([1.0]),
            stream_ids=np.array([0]),
            values=np.array([900.0]),
            horizon=2.0,
        )
        result, protocol = run_rtp(trace, KnnQuery(500.0, 2), r=0)
        assert result.tolerance_ok
        assert protocol.expansions == 1
        assert protocol.answer == frozenset({1, 2})  # 501 and 480


class TestBoundEnclosesTracked:
    """Regression: Deploy_bound's clamp case could exclude a tracked
    member by an ulp.

    When a stale outside value appears closer than the eps-th tracked
    object, the halfway gap degenerates to ``threshold = d_inside``
    exactly — but ``KnnQuery.region`` round-trips that through
    ``q ± threshold``, whose rounding can place the closed bound a few
    ulps past the tracked value (here: value 42.6416434 against a
    computed lower bound 42.64164340000002).  The source then sits
    outside a region the server believes it is inside; its membership
    never flips again, the divergence is never reported, and a later
    Case-2 promotion can lift the stale stream into the answer far out
    of tolerance.  Found by hypothesis; pinned here as a plain trace so
    a fresh checkout replays it without the local example database.
    """

    def trace(self):
        initial = np.array(
            [0.0, 2.0, 25.0, 237.0, 295.0, 296.0, 297.0,
             236.0, 26.0, 3.125e-02, 238.0, 239.0, 24.0, 240.0]
        )
        stream_ids = np.array(
            [0, 0, 0, 0, 0, 0, 0, 3, 5, 1, 0, 0, 0, 0, 0, 4,
             7, 11, 0, 2, 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2]
        )
        values = np.array(
            [542.0, 16.0, 17.0, 18.0, 19.0, 20.0, 21.0, 22.0,
             23.0, 42.6416434, 6.25e-02, 10.0, 11.0, 12.0, 13.0, 14.0,
             15.0, 0.125, 180.0, 179.0, 0.5, 1.0, 3.0, 4.0,
             5.0, 6.0, 7.0, 8.0, 9.0, 1.5, 0.25, 0.375]
        )
        return StreamTrace(
            initial_values=initial,
            times=np.arange(1.0, len(values) + 1.0),
            stream_ids=stream_ids,
            values=values,
            horizon=float(len(values) + 1),
        )

    def test_ulp_degenerate_bound_keeps_tolerance(self):
        result, _ = run_rtp(self.trace(), KnnQuery(500.0, 3), r=3)
        assert result.tolerance_ok

    def test_deployed_region_encloses_every_tracked_value(self):
        _, protocol = run_rtp(
            self.trace(), KnnQuery(500.0, 3), r=3, strict=False
        )
        lower, upper = protocol.region
        values = protocol._state.values  # noqa: SLF001
        for stream_id in protocol.tracked:
            assert lower <= values[stream_id] <= upper
