"""Unit + randomized tests for FT-NRP (Figure 7)."""

import numpy as np
import pytest

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.protocols.selection import BoundaryNearestSelection, RandomSelection
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.queries.range_query import RangeQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance

QUERY = RangeQuery(400.0, 600.0)


def run_ft(trace, eps_plus, eps_minus, **kwargs):
    tolerance = FractionTolerance(eps_plus, eps_minus)
    protocol = FractionToleranceRangeProtocol(QUERY, tolerance, **kwargs)
    result = run_protocol(
        trace,
        protocol,
        tolerance=tolerance,
        config=RunConfig(check_every=1, strict=True),
    )
    return result, protocol


class TestCorrectness:
    @pytest.mark.parametrize("eps", [0.0, 0.1, 0.25, 0.45])
    def test_tolerance_held_throughout(self, small_trace, eps):
        result, _ = run_ft(small_trace, eps, eps)
        assert result.tolerance_ok

    @pytest.mark.parametrize("ep,em", [(0.0, 0.4), (0.4, 0.0), (0.1, 0.3)])
    def test_asymmetric_tolerances(self, small_trace, ep, em):
        result, _ = run_ft(small_trace, ep, em)
        assert result.tolerance_ok

    @pytest.mark.parametrize("seed", range(5))
    def test_many_seeds(self, seed):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=60, horizon=250.0, seed=seed)
        )
        result, _ = run_ft(trace, 0.3, 0.3)
        assert result.tolerance_ok

    def test_random_selection_also_correct(self, small_trace):
        result, _ = run_ft(
            small_trace, 0.3, 0.3, selection=RandomSelection(seed=1)
        )
        assert result.tolerance_ok

    def test_reinitialize_when_exhausted_stays_correct(self):
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=60, horizon=400.0, seed=11)
        )
        result, protocol = run_ft(
            trace, 0.2, 0.2, reinitialize_when_exhausted=True
        )
        assert result.tolerance_ok


class TestStructure:
    def test_zero_tolerance_behaves_like_zt_nrp(self, small_trace):
        ft_result, protocol = run_ft(small_trace, 0.0, 0.0)
        zt_result = run_protocol(
            small_trace, ZeroToleranceRangeProtocol(QUERY)
        )
        assert protocol.n_plus == 0
        assert protocol.n_minus == 0
        assert ft_result.maintenance_messages == zt_result.maintenance_messages
        assert ft_result.final_answer == zt_result.final_answer

    def test_silencer_budgets_match_equations(self, small_trace):
        tolerance = FractionTolerance(0.3, 0.2)
        protocol = FractionToleranceRangeProtocol(QUERY, tolerance)
        # Inspect state right after initialization on a truncated trace.
        empty = small_trace.truncate(0.0)
        run_protocol(empty, protocol, tolerance=tolerance)
        in_range = int(
            np.sum(
                (small_trace.initial_values >= 400.0)
                & (small_trace.initial_values <= 600.0)
            )
        )
        assert protocol.n_plus == tolerance.emax_plus(in_range)
        assert protocol.n_minus == min(
            tolerance.emax_minus(in_range),
            small_trace.n_streams - in_range,
        )

    def test_count_slack_defers_fixes(self):
        """An enter followed by a leave consumes slack, not silencers."""
        # Stream 9 holds 300 (outside) and is beyond the FN-silencer pool
        # (boundary-nearest picks ids 1, 3, 5, 7 first on this tie), so
        # its reports reach the server.
        trace = StreamTrace(
            initial_values=np.array([500.0, 300.0, 550.0, 700.0] * 5),
            times=np.array([1.0, 2.0]),
            stream_ids=np.array([9, 9]),
            values=np.array([500.0, 200.0]),  # enters then leaves
            horizon=3.0,
        )
        tolerance = FractionTolerance(0.4, 0.4)
        protocol = FractionToleranceRangeProtocol(QUERY, tolerance)
        before = None
        result = run_protocol(trace, protocol, tolerance=tolerance)
        assert protocol.count == 0
        assert result.probe_messages == 0  # Fix_Error never ran
        assert result.maintenance_messages == 2

    def test_fix_error_spends_silencers(self):
        """A leave with zero slack must probe a silenced stream."""
        # Streams 0-9 in range, 10-19 outside.  The FP pool holds ids
        # 0-3 (4 = floor(10 * 0.45) on an all-tie boundary ordering), so
        # stream 5's report reaches the server.
        initial = np.array([500.0] * 10 + [900.0] * 10)
        trace = StreamTrace(
            initial_values=initial,
            times=np.array([1.0]),
            stream_ids=np.array([5]),
            values=np.array([100.0]),  # leaves with count == 0
            horizon=2.0,
        )
        tolerance = FractionTolerance(0.45, 0.45)
        protocol = FractionToleranceRangeProtocol(QUERY, tolerance)
        n_plus_initial = tolerance.emax_plus(10)
        result = run_protocol(trace, protocol, tolerance=tolerance)
        assert result.probe_messages >= 2  # at least one probe round-trip
        spent = (n_plus_initial - protocol.n_plus) >= 1 or protocol.n_minus < min(
            tolerance.emax_minus(10), 10
        )
        assert spent


class TestCostShape:
    def test_tolerance_reduces_messages_on_average(self):
        """Across seeds, FT-NRP at high tolerance beats ZT-NRP in total."""
        ft_total = 0
        zt_total = 0
        for seed in range(4):
            trace = generate_synthetic_trace(
                SyntheticConfig(n_streams=150, horizon=300.0, seed=seed)
            )
            tolerance = FractionTolerance(0.4, 0.4)
            ft = run_protocol(
                trace,
                FractionToleranceRangeProtocol(QUERY, tolerance),
                tolerance=tolerance,
            )
            zt = run_protocol(trace, ZeroToleranceRangeProtocol(QUERY))
            ft_total += ft.maintenance_messages
            zt_total += zt.maintenance_messages
        assert ft_total < zt_total

    def test_boundary_nearest_beats_random_on_average(self):
        bn_total = 0
        rnd_total = 0
        for seed in range(4):
            trace = generate_synthetic_trace(
                SyntheticConfig(n_streams=200, horizon=300.0, seed=seed)
            )
            tolerance = FractionTolerance(0.4, 0.4)
            bn = run_protocol(
                trace,
                FractionToleranceRangeProtocol(
                    QUERY, tolerance, selection=BoundaryNearestSelection()
                ),
                tolerance=tolerance,
            )
            rnd = run_protocol(
                trace,
                FractionToleranceRangeProtocol(
                    QUERY, tolerance, selection=RandomSelection(seed=seed)
                ),
                tolerance=tolerance,
            )
            bn_total += bn.maintenance_messages
            rnd_total += rnd.maintenance_messages
        assert bn_total < rnd_total
