"""Unit tests for ZT-NRP (zero-tolerance range protocol)."""

import numpy as np

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.queries.range_query import RangeQuery
from repro.streams.trace import StreamTrace


def test_answers_always_exact(small_trace):
    result = run_protocol(
        small_trace,
        ZeroToleranceRangeProtocol(RangeQuery(400, 600)),
        config=RunConfig(check_every=1, strict=True),
    )
    assert result.tolerance_ok


def test_cost_equals_boundary_crossings(manual_trace):
    # [10, 20]; initial [5, 15, 25, 12]; updates:
    # t1: s0 5->12  (enters)   t2: s1 15->30 (leaves)
    # t3: s2 25->18 (enters)   t4: s0 12->4  (leaves)
    # t5: s3 12->13 (stays in — no message)
    result = run_protocol(
        manual_trace, ZeroToleranceRangeProtocol(RangeQuery(10.0, 20.0))
    )
    assert result.maintenance_messages == 4
    assert result.update_messages == 4
    assert result.final_answer == frozenset({2, 3})


def test_never_costs_more_than_no_filter(small_trace):
    zt = run_protocol(
        small_trace, ZeroToleranceRangeProtocol(RangeQuery(400, 600))
    )
    assert zt.maintenance_messages <= small_trace.n_records


def test_initialization_cost_is_3n(small_trace):
    result = run_protocol(
        small_trace, ZeroToleranceRangeProtocol(RangeQuery(400, 600))
    )
    # n probes (2 messages each) + n constraint deployments.
    assert result.initialization_messages == 3 * small_trace.n_streams


def test_empty_range_intersection():
    trace = StreamTrace(
        initial_values=np.array([100.0, 200.0]),
        times=np.array([1.0]),
        stream_ids=np.array([0]),
        values=np.array([150.0]),
        horizon=2.0,
    )
    result = run_protocol(
        trace,
        ZeroToleranceRangeProtocol(RangeQuery(0.0, 10.0)),
        config=RunConfig(check_every=1, strict=True),
    )
    assert result.final_answer == frozenset()
    assert result.maintenance_messages == 0
