"""Unit tests for the silencer-selection heuristics."""

import pytest

from repro.protocols.selection import (
    BoundaryNearestSelection,
    RandomSelection,
    boundary_distance,
)


class TestBoundaryDistance:
    def test_inside_measures_nearest_endpoint(self):
        assert boundary_distance(12.0, 10.0, 20.0) == 2.0
        assert boundary_distance(18.0, 10.0, 20.0) == 2.0
        assert boundary_distance(15.0, 10.0, 20.0) == 5.0

    def test_outside_measures_gap(self):
        assert boundary_distance(5.0, 10.0, 20.0) == 5.0
        assert boundary_distance(30.0, 10.0, 20.0) == 10.0

    def test_endpoints_are_zero(self):
        assert boundary_distance(10.0, 10.0, 20.0) == 0.0
        assert boundary_distance(20.0, 10.0, 20.0) == 0.0


class TestBoundaryNearest:
    def test_orders_by_proximity(self):
        heuristic = BoundaryNearestSelection()
        candidates = {0: 15.0, 1: 11.0, 2: 19.5, 3: 14.0}
        assert heuristic.order(candidates, 10.0, 20.0) == [2, 1, 3, 0]

    def test_select_takes_prefix(self):
        heuristic = BoundaryNearestSelection()
        candidates = {0: 15.0, 1: 11.0, 2: 19.5}
        assert heuristic.select(candidates, 2, 10.0, 20.0) == [2, 1]

    def test_select_count_exceeding_pool(self):
        heuristic = BoundaryNearestSelection()
        assert heuristic.select({0: 1.0}, 10, 0.0, 2.0) == [0]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BoundaryNearestSelection().select({}, -1, 0.0, 1.0)

    def test_ties_break_by_id(self):
        heuristic = BoundaryNearestSelection()
        candidates = {3: 12.0, 1: 18.0}  # both distance 2
        assert heuristic.order(candidates, 10.0, 20.0) == [1, 3]


class TestEmptyPools:
    def test_boundary_nearest_empty_candidates(self):
        heuristic = BoundaryNearestSelection()
        assert heuristic.order({}, 0.0, 10.0) == []
        assert heuristic.select({}, 3, 0.0, 10.0) == []

    def test_random_empty_candidates(self):
        heuristic = RandomSelection(seed=0)
        assert heuristic.order({}, 0.0, 10.0) == []
        assert heuristic.select({}, 5, 0.0, 10.0) == []

    def test_select_zero_count(self):
        heuristic = BoundaryNearestSelection()
        assert heuristic.select({0: 1.0, 1: 2.0}, 0, 0.0, 10.0) == []


class TestTieBreakDeterminism:
    def test_boundary_nearest_duplicate_values(self):
        """Streams holding the *same* value tie in boundary distance and
        must come out in ascending id order, whatever the dict order."""
        heuristic = BoundaryNearestSelection()
        forward = {0: 12.0, 1: 12.0, 2: 12.0, 3: 15.0}
        backward = dict(reversed(list(forward.items())))
        expected = [0, 1, 2, 3]  # three ties at distance 2, then 3
        assert heuristic.order(forward, 10.0, 20.0) == expected
        assert heuristic.order(backward, 10.0, 20.0) == expected

    def test_boundary_nearest_symmetric_duplicates(self):
        """Equal distances from *opposite* endpoints also tie by id."""
        heuristic = BoundaryNearestSelection()
        candidates = {5: 11.0, 2: 19.0, 8: 11.0}  # all at distance 1
        assert heuristic.order(candidates, 10.0, 20.0) == [2, 5, 8]
        assert heuristic.select(candidates, 2, 10.0, 20.0) == [2, 5]

    def test_random_order_independent_of_dict_order(self):
        """Seeded random selection sorts ids before shuffling, so the
        candidate dict's insertion order must never leak through."""
        forward = {i: float(i) for i in range(12)}
        backward = dict(reversed(list(forward.items())))
        a = RandomSelection(seed=9).order(forward, 0.0, 5.0)
        b = RandomSelection(seed=9).order(backward, 0.0, 5.0)
        assert a == b

    def test_repeated_order_calls_are_reproducible_per_instance(self):
        candidates = {i: float(i) for i in range(8)}
        first = RandomSelection(seed=4).order(candidates, 0.0, 5.0)
        second = RandomSelection(seed=4).order(candidates, 0.0, 5.0)
        assert first == second


class TestRandomSelection:
    def test_returns_all_candidates(self):
        heuristic = RandomSelection(seed=0)
        candidates = {i: float(i) for i in range(10)}
        assert sorted(heuristic.order(candidates, 0.0, 5.0)) == list(range(10))

    def test_seeded_reproducibility(self):
        candidates = {i: float(i) for i in range(20)}
        a = RandomSelection(seed=5).order(candidates, 0.0, 5.0)
        b = RandomSelection(seed=5).order(candidates, 0.0, 5.0)
        assert a == b

    def test_different_seeds_usually_differ(self):
        candidates = {i: float(i) for i in range(20)}
        a = RandomSelection(seed=1).order(candidates, 0.0, 5.0)
        b = RandomSelection(seed=2).order(candidates, 0.0, 5.0)
        assert a != b

    def test_names(self):
        assert RandomSelection().name == "random"
        assert BoundaryNearestSelection().name == "boundary-nearest"
