"""Unit tests for k-NN queries and their k-min/k-max transforms."""

import math

import numpy as np
import pytest

from repro.queries.knn import KMinQuery, KnnQuery, TopKQuery


class TestKnnQuery:
    def test_distance_is_absolute_difference(self):
        query = KnnQuery(q=100.0, k=3)
        assert query.distance(110.0) == 10.0
        assert query.distance(90.0) == 10.0
        assert query.distance(100.0) == 0.0

    def test_distance_array(self):
        query = KnnQuery(q=0.0, k=1)
        np.testing.assert_array_equal(
            query.distance_array(np.array([-2.0, 3.0])), [2.0, 3.0]
        )

    def test_true_answer_picks_closest(self):
        query = KnnQuery(q=10.0, k=2)
        values = np.array([0.0, 9.0, 12.0, 100.0])
        assert query.true_answer(values) == frozenset({1, 2})

    def test_region_is_symmetric_interval(self):
        query = KnnQuery(q=50.0, k=1)
        assert query.region(10.0) == (40.0, 60.0)

    def test_infinite_q_rejected(self):
        with pytest.raises(ValueError):
            KnnQuery(q=math.inf, k=1)

    def test_nonpositive_k_rejected(self):
        with pytest.raises(ValueError):
            KnnQuery(q=0.0, k=0)

    def test_k_larger_than_population_returns_all(self):
        query = KnnQuery(q=0.0, k=10)
        assert query.true_answer(np.array([1.0, 2.0])) == frozenset({0, 1})

    def test_is_rank_based(self):
        assert KnnQuery(q=0.0, k=1).is_rank_based


class TestTopKQuery:
    def test_prefers_largest_values(self):
        query = TopKQuery(k=2)
        values = np.array([5.0, 100.0, 1.0, 50.0])
        assert query.true_answer(values) == frozenset({1, 3})

    def test_region_is_upper_half_line(self):
        lower, upper = TopKQuery(k=1).region(-42.0)
        assert lower == 42.0
        assert upper == math.inf

    def test_region_membership_matches_distance(self):
        query = TopKQuery(k=1)
        threshold = query.distance(42.0)
        lower, upper = query.region(threshold)
        assert lower <= 50.0 <= upper       # higher value: inside
        assert not (lower <= 30.0 <= upper)  # lower value: outside


class TestKMinQuery:
    def test_prefers_smallest_values(self):
        query = KMinQuery(k=2)
        values = np.array([5.0, 100.0, 1.0, 50.0])
        assert query.true_answer(values) == frozenset({0, 2})

    def test_region_is_lower_half_line(self):
        lower, upper = KMinQuery(k=1).region(7.0)
        assert lower == -math.inf
        assert upper == 7.0

    def test_region_membership_matches_distance(self):
        query = KMinQuery(k=1)
        threshold = query.distance(42.0)
        lower, upper = query.region(threshold)
        assert lower <= 30.0 <= upper
        assert not (lower <= 50.0 <= upper)


def test_transforms_are_order_isomorphic_to_extreme_knn():
    """TopK / KMin agree with a k-NN query at a far-away finite point."""
    values = np.array([10.0, 700.0, 355.0, 42.0, 999.0, 3.0])
    far = KnnQuery(q=1e9, k=3)
    assert TopKQuery(k=3).true_answer(values) == far.true_answer(values)
    near = KnnQuery(q=-1e9, k=3)
    assert KMinQuery(k=3).true_answer(values) == near.true_answer(values)
