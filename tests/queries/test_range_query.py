"""Unit tests for range queries."""

import math

import numpy as np
import pytest

from repro.queries.range_query import RangeQuery


def test_matches_closed_interval():
    query = RangeQuery(400.0, 600.0)
    assert query.matches(400.0)
    assert query.matches(600.0)
    assert query.matches(500.0)
    assert not query.matches(399.999)
    assert not query.matches(600.001)


def test_matches_array_agrees_with_scalar():
    query = RangeQuery(-2.0, 3.0)
    values = np.array([-3.0, -2.0, 0.0, 3.0, 3.5])
    expected = [query.matches(float(v)) for v in values]
    np.testing.assert_array_equal(query.matches_array(values), expected)


def test_true_answer_returns_ids():
    query = RangeQuery(10.0, 20.0)
    values = np.array([5.0, 15.0, 25.0, 20.0])
    assert query.true_answer(values) == frozenset({1, 3})


def test_invalid_range_rejected():
    with pytest.raises(ValueError):
        RangeQuery(5.0, 1.0)
    with pytest.raises(ValueError):
        RangeQuery(math.nan, 1.0)


def test_is_not_rank_based():
    assert not RangeQuery(0.0, 1.0).is_rank_based


def test_width():
    assert RangeQuery(400.0, 600.0).width == 200.0


def test_boundary_distance():
    query = RangeQuery(10.0, 20.0)
    assert query.boundary_distance(12.0) == 2.0
    assert query.boundary_distance(19.0) == 1.0
    assert query.boundary_distance(5.0) == 5.0
    assert query.boundary_distance(23.0) == 3.0


def test_half_line_ranges_allowed():
    query = RangeQuery(100.0, math.inf)
    assert query.matches(1e12)
    assert not query.matches(99.0)
