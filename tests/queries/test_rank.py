"""Unit + property tests for rank functions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queries.knn import KnnQuery, TopKQuery
from repro.queries.rank import rank_of, ranked_ids, top_ranked, true_knn_answer

values_strategy = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=30
)


def brute_force_rank(query, stream_id, values):
    """Reference rank: 1 + number of streams beating stream_id."""
    mine = query.distance(values[stream_id])
    beats = 0
    for other, value in enumerate(values):
        d = query.distance(value)
        if d < mine or (d == mine and other < stream_id):
            beats += 1
    return beats + 1


def test_ranked_ids_simple():
    query = KnnQuery(q=0.0, k=1)
    values = np.array([5.0, -1.0, 3.0])
    assert list(ranked_ids(query, values)) == [1, 2, 0]


def test_rank_of_with_ties_breaks_by_id():
    query = KnnQuery(q=0.0, k=1)
    values = np.array([2.0, -2.0, 2.0])  # all distance 2
    assert rank_of(query, 0, values) == 1
    assert rank_of(query, 1, values) == 2
    assert rank_of(query, 2, values) == 3


def test_rank_of_out_of_range_raises():
    query = KnnQuery(q=0.0, k=1)
    with pytest.raises(IndexError):
        rank_of(query, 5, np.array([1.0]))


@given(values_strategy, st.data())
def test_rank_of_matches_brute_force(values, data):
    query = KnnQuery(q=0.0, k=1)
    stream_id = data.draw(st.integers(0, len(values) - 1))
    array = np.array(values)
    assert rank_of(query, stream_id, array) == brute_force_rank(
        query, stream_id, values
    )


@given(values_strategy)
def test_ranks_are_a_permutation(values):
    query = TopKQuery(k=1)
    array = np.array(values)
    ranks = [rank_of(query, i, array) for i in range(len(values))]
    assert sorted(ranks) == list(range(1, len(values) + 1))


@given(values_strategy, st.integers(1, 10))
def test_true_knn_answer_matches_ranked_prefix(values, k):
    query = KnnQuery(q=100.0, k=k)
    array = np.array(values)
    expected = frozenset(int(i) for i in ranked_ids(query, array)[:k])
    assert true_knn_answer(query, array) == expected


@given(values_strategy, st.integers(1, 5))
def test_answer_members_rank_at_most_k(values, k):
    query = KnnQuery(q=0.0, k=k)
    array = np.array(values)
    answer = true_knn_answer(query, array)
    assert len(answer) == min(k, len(values))
    for member in answer:
        assert rank_of(query, member, array) <= k


def test_true_knn_answer_tie_at_threshold():
    query = KnnQuery(q=0.0, k=2)
    values = np.array([1.0, -1.0, 1.0])  # distances 1, 1, 1
    assert true_knn_answer(query, values) == frozenset({0, 1})


def test_top_ranked_returns_best_first():
    query = TopKQuery(k=1)
    values = np.array([10.0, 30.0, 20.0])
    assert top_ranked(query, values, 2) == [1, 2]
