"""Journal framing properties: torn tails, corruption, idempotence.

The recovery argument leans on three facts about the on-disk format,
each driven here by hypothesis over arbitrary record sequences:

* truncating the file at *every* byte offset still recovers a valid
  prefix of whole frames (a crash mid-append never poisons the log);
* flipping any byte inside a frame is *detected* — the corrupted frame
  and everything after it are excluded, never silently replayed;
* closing and reopening for append is idempotent: the reopened journal
  continues the same record sequence, and ``Journal.open`` physically
  truncates whatever tail the scan rejected.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.journal import (
    MAGIC,
    REC_EVENTS,
    REC_MESSAGES,
    REC_META,
    Journal,
    JournaledLedger,
    load_journal,
    scan_journal,
)
from repro.network.accounting import Phase
from repro.network.messages import MessageKind, UpdateMessage


def _write_records(path, records):
    """Append a mixed record sequence described by small tuples."""
    journal = Journal.open(path, fsync="never")
    for record in records:
        tag = record[0]
        if tag == "meta":
            journal.append_meta({"n": record[1]})
        elif tag == "events":
            count = record[1]
            journal.append_events(
                np.arange(count, dtype=np.float64),
                np.arange(count, dtype=np.int64),
                np.full(count, 0.5),
            )
        elif tag == "message":
            journal.append_message(
                Phase.MAINTENANCE, MessageKind.UPDATE, record[1]
            )
        else:
            journal.append_snapshot_mark(record[1], f"snap_{record[1]}.pkl")
    journal.close()


_RECORDS = st.lists(
    st.one_of(
        st.tuples(st.just("meta"), st.integers(0, 100)),
        st.tuples(st.just("events"), st.integers(0, 20)),
        st.tuples(st.just("message"), st.integers(0, 1000)),
        st.tuples(st.just("snapshot"), st.integers(0, 10**6)),
    ),
    min_size=0,
    max_size=8,
)


@settings(max_examples=40, deadline=None)
@given(records=_RECORDS)
def test_truncation_at_every_offset_recovers_a_valid_prefix(
    tmp_path_factory, records
):
    """Cutting the file anywhere yields a clean frame-prefix parse."""
    tmp = tmp_path_factory.mktemp("journal")
    path = os.path.join(tmp, "journal.bin")
    _write_records(path, records)
    with open(path, "rb") as handle:
        blob = handle.read()
    full = scan_journal(path)
    assert full.reason == "clean"
    assert len(full.records) == len(records)

    frame_ends = {len(MAGIC)}
    offset = len(MAGIC)
    for _ in full.records:
        length = int.from_bytes(blob[offset : offset + 4], "little")
        offset += 8 + length
        frame_ends.add(offset)

    for cut in range(len(blob) + 1):
        with open(path, "wb") as handle:
            handle.write(blob[:cut])
        scan = scan_journal(path)
        if cut < len(MAGIC):
            assert scan.reason == "magic"
            assert scan.records == []
            continue
        # The valid prefix is the largest frame boundary <= cut, and
        # every surviving record matches the uncut parse exactly.
        expected = max(end for end in frame_ends if end <= cut)
        assert scan.valid_bytes == expected
        assert scan.reason == ("clean" if cut in frame_ends else "torn")
        assert scan.records == full.records[: len(scan.records)]


@settings(max_examples=40, deadline=None)
@given(records=_RECORDS, data=st.data())
def test_corruption_is_detected_not_replayed(tmp_path_factory, records, data):
    """A flipped byte ends the valid prefix at the corrupted frame."""
    tmp = tmp_path_factory.mktemp("journal")
    path = os.path.join(tmp, "journal.bin")
    _write_records(path, records)
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    full = scan_journal(path)
    if len(blob) <= len(MAGIC):
        return  # nothing to corrupt
    index = data.draw(
        st.integers(len(MAGIC), len(blob) - 1), label="corrupt_at"
    )
    flip = data.draw(st.integers(1, 255), label="xor")
    blob[index] ^= flip
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    scan = scan_journal(path)
    # Never more records than before, and the surviving prefix is an
    # exact (uncorrupted) prefix of the original sequence.
    assert scan.reason != "clean" or len(scan.records) < len(full.records)
    assert len(scan.records) < len(full.records) or scan.reason in (
        "crc",
        "torn",
    )
    assert scan.records == full.records[: len(scan.records)]
    assert scan.valid_bytes <= index


@settings(max_examples=25, deadline=None)
@given(first=_RECORDS, second=_RECORDS, cut_back=st.integers(0, 12))
def test_append_reopen_idempotence(tmp_path_factory, first, second, cut_back):
    """Reopen-and-append continues the sequence; torn tails are cut."""
    tmp = tmp_path_factory.mktemp("journal")
    path = os.path.join(tmp, "journal.bin")
    _write_records(path, first)

    # Tear the tail by a few bytes, as an unflushed crash would.
    size = os.path.getsize(path)
    torn = max(len(MAGIC), size - cut_back)
    with open(path, "rb+") as handle:
        handle.truncate(torn)
    survivors = len(scan_journal(path).records)

    _write_records(path, second)  # Journal.open truncates, then appends
    scan = scan_journal(path)
    assert scan.reason == "clean"
    assert len(scan.records) == survivors + len(second)
    full = scan_journal(path)
    tail = full.records[survivors:]
    assert [rtype for rtype, _ in tail] == [
        {"meta": REC_META, "events": REC_EVENTS, "message": REC_MESSAGES}.get(
            record[0], 4
        )
        for record in second
    ]


def test_events_round_trip(tmp_path):
    path = os.path.join(tmp_path, "journal.bin")
    journal = Journal.open(path)
    times = np.array([0.5, 1.5, 2.5])
    ids = np.array([3, 1, 2], dtype=np.int64)
    values = np.array([10.0, -2.0, 7.25])
    journal.append_events(times, ids, values)
    journal.append_events(times + 10.0, ids, values * 2)
    journal.close()
    contents = load_journal(path)
    assert contents.segments == [3, 3]
    np.testing.assert_array_equal(
        contents.times, np.concatenate([times, times + 10.0])
    )
    np.testing.assert_array_equal(
        contents.stream_ids, np.concatenate([ids, ids])
    )
    np.testing.assert_array_equal(
        contents.values, np.concatenate([values, values * 2])
    )


def test_open_refuses_non_journal_files(tmp_path):
    path = os.path.join(tmp_path, "notes.txt")
    with open(path, "w") as handle:
        handle.write("definitely not a journal, long enough to have bytes")
    with pytest.raises(ValueError, match="bad magic"):
        Journal.open(path)


def test_simulate_crash_drops_buffered_bytes(tmp_path):
    """fsync='never' keeps appends in the Python buffer; a simulated
    process kill loses exactly those, while synced bytes survive."""
    path = os.path.join(tmp_path, "journal.bin")
    journal = Journal.open(path, fsync="never")
    journal.append_meta({"run": 1})
    journal.sync()
    journal.append_message(Phase.MAINTENANCE, MessageKind.UPDATE, 5)
    journal.simulate_crash()
    scan = scan_journal(path)
    assert scan.reason == "clean"
    assert [rtype for rtype, _ in scan.records] == [REC_META]


def test_journaled_ledger_mirrors_every_charge(tmp_path):
    path = os.path.join(tmp_path, "journal.bin")
    journal = Journal.open(path, fsync="every")
    ledger = JournaledLedger()
    ledger.attach_journal(journal)
    ledger.record(UpdateMessage(stream_id=0, time=1.0, value=2.0))
    ledger.phase = Phase.MAINTENANCE
    ledger.record_kind(MessageKind.CONSTRAINT, 7)
    ledger.detach_journal()
    ledger.record_kind(MessageKind.UPDATE, 3)  # not journaled
    journal.close()
    contents = load_journal(path)
    assert contents.messages == [
        (Phase.INITIALIZATION, MessageKind.UPDATE, 1),
        (Phase.MAINTENANCE, MessageKind.CONSTRAINT, 7),
    ]
    # The in-RAM tallies saw all three charges.
    assert ledger.count(MessageKind.UPDATE) == 4


def test_snapshot_marks_decode(tmp_path):
    path = os.path.join(tmp_path, "journal.bin")
    journal = Journal.open(path)
    journal.append_snapshot_mark(1024, "snapshot_000000001024.pkl")
    journal.close()
    contents = load_journal(path)
    assert contents.snapshots == [
        {"position": 1024, "file": "snapshot_000000001024.pkl"}
    ]
    assert json.dumps(contents.snapshots) is not None
