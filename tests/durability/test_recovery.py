"""Kill-and-recover differential: the recovered run IS the run.

The acceptance contract: a run killed mid-replay and recovered from
snapshot+journal produces a message ledger byte-identical to the
uninterrupted run, across

    {zt-nrp, rtp} × {single, sharded(2)} × {event, batch}

with both recovery paths exercised (snapshot restore and journal-only
manifest rebuild), plus one real ``os._exit`` subprocess kill.
"""

import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.durability import DurabilityPolicy, recover_run, resume_run
from repro.durability.runner import execute_durable_streams
from repro.queries.knn import TopKQuery
from repro.queries.range_query import RangeQuery
from repro.tolerance.rank_tolerance import RankTolerance

SPECS = {
    "zt-nrp": QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0)),
    "rtp": QuerySpec(
        protocol="rtp", query=TopKQuery(10), tolerance=RankTolerance(10, 5)
    ),
}

WORKLOAD = Workload.synthetic(n_streams=120, horizon=400.0, seed=23)


class SimulatedKill(BaseException):
    """Raised from the progress hook to model a mid-run process death."""


def _crash_then_resume(spec, deployment_kind, replay_mode, policy, trace):
    """Run durably, kill at half the trace, recover, finish."""
    if deployment_kind == "single":
        deployment = Deployment.single(replay_mode=replay_mode, durable=policy)
    else:
        deployment = Deployment.sharded(
            2, replay_mode=replay_mode, durable=policy
        )
    kill_at = trace.n_records // 2

    def progress(position):
        if position >= kill_at:
            raise SimulatedKill

    with pytest.raises(SimulatedKill):
        execute_durable_streams(
            trace, spec.build(), deployment, progress=progress
        )
    return resume_run(policy.run_dir, trace)


@pytest.mark.parametrize("protocol", sorted(SPECS))
@pytest.mark.parametrize("deployment_kind", ["single", "sharded"])
@pytest.mark.parametrize("replay_mode", ["event", "batch"])
def test_kill_and_recover_ledger_identity(
    tmp_path, protocol, deployment_kind, replay_mode
):
    spec = SPECS[protocol]
    trace = WORKLOAD.materialize()
    baseline = Engine().run(spec, WORKLOAD, Deployment.single())

    policy = DurabilityPolicy(
        run_dir=str(tmp_path / "run"),
        fsync="every",
        snapshot_every=400,
        segment_records=128,
    )
    result = _crash_then_resume(
        spec, deployment_kind, replay_mode, policy, trace
    )
    assert result.ledger == baseline.ledger
    assert result.final_answer == baseline.final_answer
    durability = result.extras["durability"]
    assert durability["recovered"] is True
    assert durability["recovery"]["snapshot_file"] is not None
    assert durability["recovery"]["position"] >= trace.n_records // 2


@pytest.mark.parametrize("protocol", sorted(SPECS))
def test_journal_only_recovery_without_snapshots(tmp_path, protocol):
    """snapshot_every=0: recovery rebuilds from the manifest and
    replays the whole journal — same ledger, same answer."""
    spec = SPECS[protocol]
    trace = WORKLOAD.materialize()
    baseline = Engine().run(spec, WORKLOAD, Deployment.single())

    policy = DurabilityPolicy(
        run_dir=str(tmp_path / "run"),
        fsync="every",
        snapshot_every=0,
        segment_records=128,
    )
    result = _crash_then_resume(spec, "single", "batch", policy, trace)
    assert result.ledger == baseline.ledger
    assert result.final_answer == baseline.final_answer
    assert result.extras["durability"]["recovery"]["snapshot_file"] is None


def test_uninterrupted_durable_run_matches_plain(tmp_path):
    """No crash at all: the durable wrapper changes nothing observable."""
    spec = SPECS["zt-nrp"]
    baseline = Engine().run(spec, WORKLOAD, Deployment.single())
    policy = DurabilityPolicy(run_dir=str(tmp_path / "run"))
    report = Engine().run(
        spec, WORKLOAD, Deployment.single(durable=policy)
    )
    assert report.ledger == baseline.ledger
    assert report.final_answer == baseline.final_answer
    assert report.topology == "single+durable"
    assert report.extras["durability"]["recovered"] is False


def test_recover_run_reports_position(tmp_path):
    """recover_run alone rebuilds the session to the journal's edge."""
    spec = SPECS["zt-nrp"]
    trace = WORKLOAD.materialize()
    policy = DurabilityPolicy(
        run_dir=str(tmp_path / "run"), fsync="every", segment_records=64
    )
    kill_at = trace.n_records // 3

    def progress(position):
        if position >= kill_at:
            raise SimulatedKill

    with pytest.raises(SimulatedKill):
        execute_durable_streams(
            trace, spec.build(), Deployment.single(durable=policy),
            progress=progress,
        )
    rec = recover_run(policy.run_dir)
    assert rec.position >= kill_at
    assert rec.position < trace.n_records
    assert rec.scan_reason in ("clean", "torn")


def test_rerunning_an_existing_run_dir_is_refused(tmp_path):
    spec = SPECS["zt-nrp"]
    policy = DurabilityPolicy(run_dir=str(tmp_path / "run"))
    Engine().run(spec, WORKLOAD, Deployment.single(durable=policy))
    with pytest.raises(FileExistsError, match="recover"):
        Engine().run(spec, WORKLOAD, Deployment.single(durable=policy))


def test_resume_rejects_a_foreign_trace(tmp_path):
    spec = SPECS["zt-nrp"]
    trace = WORKLOAD.materialize()
    policy = DurabilityPolicy(
        run_dir=str(tmp_path / "run"), fsync="every", segment_records=64
    )

    def progress(position):
        raise SimulatedKill

    with pytest.raises(SimulatedKill):
        execute_durable_streams(
            trace, spec.build(), Deployment.single(durable=policy),
            progress=progress,
        )
    short = trace.restrict_streams(trace.n_streams).truncate(1.0)
    with pytest.raises(ValueError, match="wrong trace"):
        resume_run(policy.run_dir, short)


def test_real_process_kill_and_recover(tmp_path):
    """A child process os._exit(1)s mid-run; the parent recovers it."""
    trace_path = tmp_path / "trace.npz"
    run_dir = tmp_path / "run"
    trace = WORKLOAD.materialize()
    trace.save(trace_path)

    child = textwrap.dedent(
        f"""
        import os
        from repro.api import Deployment
        from repro.durability import DurabilityPolicy
        from repro.durability.runner import execute_durable_streams
        from repro.api import QuerySpec
        from repro.queries.range_query import RangeQuery
        from repro.streams.trace import StreamTrace

        trace = StreamTrace.load({str(trace_path)!r})
        policy = DurabilityPolicy(
            run_dir={str(run_dir)!r}, fsync="every", snapshot_every=300,
            segment_records=64,
        )
        spec = QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))

        def progress(position):
            if position >= trace.n_records // 2:
                os._exit(1)  # no atexit, no finally: a genuine kill

        execute_durable_streams(
            trace, spec.build(), Deployment.single(durable=policy),
            progress=progress,
        )
        raise SystemExit("unreachable: the child should have died")
        """
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", child], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 1, proc.stderr

    baseline = Engine().run(SPECS["zt-nrp"], WORKLOAD, Deployment.single())
    result = resume_run(str(run_dir), trace)
    assert result.ledger == baseline.ledger
    assert result.final_answer == baseline.final_answer


def test_snapshot_pickles_reopen_consistently(tmp_path):
    """Direct check of the snapshot cut: a pickled mid-run graph
    re-binds into a working session (shard aliasing preserved)."""
    from repro.durability.journal import load_journal

    spec = SPECS["zt-nrp"]
    trace = WORKLOAD.materialize()
    policy = DurabilityPolicy(
        run_dir=str(tmp_path / "run"),
        fsync="every",
        snapshot_every=200,
        segment_records=64,
    )
    Engine().run(spec, WORKLOAD, Deployment.sharded(2, durable=policy))
    contents = load_journal(policy.journal_path)
    assert contents.snapshots, "expected at least one snapshot mark"
    path = os.path.join(policy.snapshot_dir, contents.snapshots[-1]["file"])
    with open(path, "rb") as handle:
        blob = pickle.load(handle)
    host = blob["host"]
    from repro.state.sharding import validate_shard_alignment

    validate_shard_alignment(
        host.state, [shard.state for shard in host.shards]
    )
