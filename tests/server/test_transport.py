"""The shard transport's contract: process-parallel coupled serving.

``Deployment.sharded(n, parallel=True)`` compiles coupled scalar
protocols onto worker processes behind the epoch-stepped coordinator
(``repro/server/transport.py``).  The contract is byte-identity: the
coordinator's message ledger — and the final answer — must equal
sequential sharded serving across the full grid of {sequential,
parallel} x {2, 4} shards x {event, batch} replay x {synchronous,
latency=0} channels, for every coupled scalar protocol.  (Nonzero
latency models ride the in-flight plane and get their own grid in
``test_transport_latency.py``.)

Alongside the grid: worker-crash behaviour (a clean raised error, no
hang, no partially-merged ledger), the merged replay diagnostics, and
the ``is_zero`` latency classification the zero/nonzero routing rests
on.
"""

import time

import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.queries.knn import KnnQuery, TopKQuery
from repro.queries.range_query import RangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

WORKLOAD = Workload.synthetic(n_streams=100, horizon=30.0, seed=7)

#: The coupled scalar protocols — the ones the transport exists for.
#: (ZT-NRP is decomposable and served by the fan-out path instead.)
COUPLED_SPECS = {
    "rtp": QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=5),
        tolerance=RankTolerance(k=5, r=3),
    ),
    "zt-rp": QuerySpec(protocol="zt-rp", query=KnnQuery(q=500.0, k=5)),
    "ft-rp": QuerySpec(
        protocol="ft-rp",
        query=KnnQuery(q=500.0, k=5),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
    "ft-nrp": QuerySpec(
        protocol="ft-nrp",
        query=RangeQuery(400.0, 600.0),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
}


# ----------------------------------------------------------------------
# The ledger-identity grid
# ----------------------------------------------------------------------
@pytest.mark.parametrize("latency", [None, 0], ids=["sync", "latency0"])
@pytest.mark.parametrize("mode", ["event", "batch"])
@pytest.mark.parametrize("n_shards", [2, 4])
@pytest.mark.parametrize("protocol", sorted(COUPLED_SPECS))
def test_transport_ledger_identical_to_sequential(
    protocol, n_shards, mode, latency
):
    engine = Engine()
    spec = COUPLED_SPECS[protocol]
    sequential = engine.run(
        spec,
        WORKLOAD,
        Deployment.sharded(n_shards, replay_mode=mode, latency=latency),
    )
    parallel = engine.run(
        spec,
        WORKLOAD,
        Deployment.sharded(
            n_shards, parallel=True, replay_mode=mode, latency=latency
        ),
    )
    assert parallel.ledger == sequential.ledger
    assert parallel.final_answer == sequential.final_answer
    strip = lambda e: {k: v for k, v in e.items() if k != "replay"}  # noqa: E731
    assert strip(parallel.extras) == strip(sequential.extras)


def test_transport_matches_single_server_too():
    # Transitivity check pinned down explicitly: the transport equals
    # the single server, not merely the sequential sharded coordinator.
    engine = Engine()
    spec = COUPLED_SPECS["rtp"]
    single = engine.run(spec, WORKLOAD, Deployment.single())
    parallel = engine.run(
        spec, WORKLOAD, Deployment.sharded(4, parallel=True)
    )
    assert parallel.ledger == single.ledger
    assert parallel.final_answer == single.final_answer


def test_checking_runs_route_through_the_transport():
    # Regression for the PR-7 limitation: check_every > 0 used to fall
    # back to the sequential coordinator.  It now runs coordinator-side
    # oracle probes at epoch boundaries on the transport itself — the
    # merged stats carry the transport counters (no fallback) and the
    # checks, violations, and ledger all match the single server.
    engine = Engine()
    spec = COUPLED_SPECS["rtp"]
    single = engine.run(spec, WORKLOAD, Deployment.single(check_every=5))
    checked = engine.run(
        spec, WORKLOAD, Deployment.sharded(2, parallel=True, check_every=5)
    )
    assert "transport" in checked.extras["replay"], "fallback is gone"
    assert checked.checks == single.checks > 0
    assert list(checked.violations) == list(single.violations)
    assert checked.ledger == single.ledger


# ----------------------------------------------------------------------
# Replay diagnostics merge across workers
# ----------------------------------------------------------------------
def test_merge_replay_stats_counts_workers():
    from repro.api.engine import _merge_replay_stats

    parts = [
        {"mode": "batch", "kernel": "chunk", "records": 10, "staged": 4},
        {"mode": "batch", "kernel": "chunk", "records": 7, "staged": 1},
        {"mode": "batch", "kernel": "chunk", "records": 3, "staged": 0},
    ]
    merged = _merge_replay_stats(parts)
    assert merged["workers"] == 3
    assert merged["records"] == 20
    assert merged["staged"] == 5
    assert merged["mode"] == "batch"


def test_transport_report_merges_worker_diagnostics():
    report = Engine().run(
        COUPLED_SPECS["zt-rp"],
        WORKLOAD,
        Deployment.sharded(4, parallel=True),
    )
    stats = report.extras["replay"]
    assert stats["workers"] == 4
    assert stats["records"] == report.n_records
    transport = stats["transport"]
    assert transport["epochs"] > 0
    assert transport["posts"] > 0
    assert transport["bytes_out"] > 0
    assert len(transport["worker_busy_seconds"]) == 4


# ----------------------------------------------------------------------
# Latency classification (routes zero-delay past the in-flight plane)
# ----------------------------------------------------------------------
def test_latency_models_classify_zero_delay():
    from repro.network.latency import (
        ExponentialLatency,
        FixedLatency,
        UniformLatency,
        as_latency_model,
    )

    assert FixedLatency(0.0).is_zero
    assert as_latency_model(0).is_zero
    assert not FixedLatency(0.5).is_zero
    assert UniformLatency(0.0, 0.0).is_zero
    assert not UniformLatency(0.0, 0.2).is_zero
    assert ExponentialLatency(0.0, 0.0).is_zero
    assert not ExponentialLatency(0.1, 0.0).is_zero


def test_nonzero_latency_is_accepted_and_steps_the_plane():
    # Regression: nonzero models used to be rejected up front with a
    # "zero-delay channels" ValueError.  They now construct, replay,
    # and account their deferred deliveries on the in-flight plane.
    from repro.server.transport import TransportShardedServer

    trace = WORKLOAD.materialize()
    protocol = COUPLED_SPECS["rtp"].build()
    server = TransportShardedServer(trace, protocol, 2, latency=0.5)
    with server:
        server.initialize(0.0)
        server.replay(horizon=trace.horizon)
        stats = server.transport_stats()
    assert stats["in_flight_deliveries"] > 0


# ----------------------------------------------------------------------
# Worker crash: raise cleanly, never hang, never emit a partial ledger
# ----------------------------------------------------------------------
def test_worker_crash_raises_cleanly_without_hanging():
    from repro.server.transport import TransportError, TransportShardedServer

    trace = WORKLOAD.materialize()
    protocol = COUPLED_SPECS["rtp"].build()
    server = TransportShardedServer(trace, protocol, 2)
    with server:
        server.initialize(0.0)
        workers = [server.bus.handle(index).process for index in range(2)]
        workers[1].terminate()
        workers[1].join(timeout=5.0)
        started = time.perf_counter()
        with pytest.raises(TransportError):
            server.replay(horizon=trace.horizon)
        # The failure must be detected promptly — liveness polling, not
        # the 60 s receive deadline.
        assert time.perf_counter() - started < 30.0
    # No partial ledger: the crash aborted replay before any merged
    # worker stats were recorded.
    assert server.transport_stats().get("worker_busy_seconds") is None
    # close() (via __exit__) reaped every worker.
    for process in workers:
        assert not process.is_alive()
