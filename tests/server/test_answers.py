"""Unit tests for the answer-set container."""

import pytest

from repro.server.answers import AnswerSet


def test_starts_with_initial_members():
    answers = AnswerSet([1, 2])
    assert len(answers) == 2
    assert 1 in answers and 2 in answers


def test_add_discard_remove():
    answers = AnswerSet()
    answers.add(5)
    assert 5 in answers
    answers.discard(5)
    answers.discard(5)  # idempotent
    assert 5 not in answers
    answers.add(7)
    answers.remove(7)
    with pytest.raises(KeyError):
        answers.remove(7)


def test_replace_swaps_atomically():
    answers = AnswerSet([1, 2, 3])
    answers.replace([4, 5])
    assert set(answers) == {4, 5}


def test_snapshot_is_frozen_and_detached():
    answers = AnswerSet([1])
    snapshot = answers.snapshot()
    answers.add(2)
    assert snapshot == frozenset({1})
    with pytest.raises(AttributeError):
        snapshot.add(3)  # type: ignore[attr-defined]


def test_clear():
    answers = AnswerSet([1, 2])
    answers.clear()
    assert len(answers) == 0


def test_iteration():
    assert sorted(AnswerSet([3, 1, 2])) == [1, 2, 3]


def test_numpy_integer_ids_roundtrip():
    """np.int64 ids (from mask columns / argsort) must add AND remove."""
    np = pytest.importorskip("numpy")
    answers = AnswerSet()
    answers.add(np.int64(5))
    assert 5 in answers
    answers.discard(np.int64(5))
    assert 5 not in answers and len(answers) == 0
    answers.add(np.int64(7))
    answers.remove(np.int64(7))
    assert len(answers) == 0
    answers.replace([np.int64(1), np.int64(2)])
    assert all(isinstance(member, int) for member in answers)
