"""Unit tests for the server's control plane and message dispatch."""

import math

from repro.network.accounting import MessageLedger, Phase
from repro.network.channel import Channel
from repro.network.messages import MessageKind
from repro.protocols.base import FilterProtocol
from repro.server.server import Server
from repro.streams.source import StreamSource


class RecordingProtocol(FilterProtocol):
    """Test double: records callbacks, optionally acts during them."""

    name = "recording"

    def __init__(self, on_init=None, on_upd=None):
        self.initialized = 0
        self.updates = []
        self._on_init = on_init
        self._on_upd = on_upd

    def initialize(self, server):
        self.initialized += 1
        if self._on_init:
            self._on_init(server)

    def on_update(self, server, stream_id, value, time):
        self.updates.append((stream_id, value, time))
        if self._on_upd:
            self._on_upd(server, stream_id, value, time)

    @property
    def answer(self):
        return frozenset()


def make_system(n_sources=3, protocol=None):
    ledger = MessageLedger()
    channel = Channel(ledger)
    sources = [
        StreamSource(i, float(10 * i), channel) for i in range(n_sources)
    ]
    protocol = protocol or RecordingProtocol()
    server = Server(channel, protocol)
    return server, protocol, sources, ledger


def test_initialize_invokes_protocol_once():
    server, protocol, _, _ = make_system()
    server.initialize()
    assert protocol.initialized == 1


def test_probe_returns_value_and_costs_two_messages():
    server, _, sources, ledger = make_system()
    sources[2].value = 77.0
    assert server.probe(2) == 77.0
    assert ledger.count(MessageKind.PROBE_REQUEST) == 1
    assert ledger.count(MessageKind.PROBE_REPLY) == 1


def test_probe_all_returns_every_value():
    server, _, sources, ledger = make_system()
    values = server.probe_all()
    assert values == {0: 0.0, 1: 10.0, 2: 20.0}
    assert ledger.count(MessageKind.PROBE_REQUEST) == 3


def test_probe_all_subset():
    server, _, _, _ = make_system()
    assert set(server.probe_all([0, 2])) == {0, 2}


def test_deploy_installs_constraint():
    server, _, sources, ledger = make_system()
    server.deploy(1, 5.0, 15.0)
    assert sources[1].constraint.lower == 5.0
    assert sources[1].constraint.upper == 15.0
    assert ledger.count(MessageKind.CONSTRAINT) == 1


def test_broadcast_costs_n_messages():
    server, _, _, ledger = make_system(n_sources=5)
    server.broadcast(-math.inf, math.inf)
    assert ledger.count(MessageKind.CONSTRAINT) == 5


def test_update_dispatches_to_protocol():
    server, protocol, sources, _ = make_system()
    sources[0].apply_value(99.0, time=4.0)  # no filter: reports
    assert protocol.updates == [(0, 99.0, 4.0)]
    assert server.now == 4.0


def test_self_correction_during_deploy_is_deferred():
    """An update triggered by a stale-belief deploy must not re-enter the
    protocol while it is still handling the current step."""
    depth = {"now": 0, "max": 0}

    def on_upd(server, stream_id, value, time):
        depth["now"] += 1
        depth["max"] = max(depth["max"], depth["now"])
        if stream_id == 0:
            # Wrong belief about source 1 (value 10 is outside [100, 200])
            # -> source 1 self-corrects with an update immediately.
            server.deploy(1, 100.0, 200.0, assumed_inside=True)
        depth["now"] -= 1

    server, protocol, sources, _ = make_system(
        protocol=RecordingProtocol(on_upd=on_upd)
    )
    sources[0].apply_value(50.0, time=1.0)
    assert [u[0] for u in protocol.updates] == [0, 1]
    assert depth["max"] == 1  # never nested


def test_update_arriving_mid_drain_is_queued_not_reentered():
    """Regression: an update triggered *while* the pending queue is
    draining must join the queue, not re-enter the protocol.

    Stream 0's update deploys a stale-belief constraint at stream 1
    (self-correction #1, deferred).  Draining that update deploys a
    stale-belief constraint at stream 2 — its self-correction arrives
    mid-drain and must be serialized after it, never nested."""
    depth = {"now": 0, "max": 0}

    def on_upd(server, stream_id, value, time):
        depth["now"] += 1
        depth["max"] = max(depth["max"], depth["now"])
        if stream_id == 0:
            # value 10 is outside [100, 200]: belief 'inside' is stale.
            server.deploy(1, 100.0, 200.0, assumed_inside=True)
        elif stream_id == 1:
            # Triggered during _drain_pending: another stale deploy.
            server.deploy(2, 100.0, 200.0, assumed_inside=True)
        depth["now"] -= 1

    server, protocol, sources, _ = make_system(
        protocol=RecordingProtocol(on_upd=on_upd)
    )
    sources[0].apply_value(50.0, time=1.0)
    assert [u[0] for u in protocol.updates] == [0, 1, 2]
    assert depth["max"] == 1  # the drain never nested a handler


def test_self_correction_during_initialize_is_deferred():
    def on_init(server):
        server.deploy(0, 100.0, 200.0, assumed_inside=True)

    server, protocol, _, _ = make_system(
        protocol=RecordingProtocol(on_init=on_init)
    )
    server.initialize()
    assert [u[0] for u in protocol.updates] == [0]


def test_probes_during_update_are_not_misrouted():
    """Probe replies arriving mid-update go to the probe buffer, not
    the protocol."""

    def on_upd(server, stream_id, value, time):
        if stream_id == 0:
            assert server.probe(2) == 20.0

    server, protocol, sources, _ = make_system(
        protocol=RecordingProtocol(on_upd=on_upd)
    )
    sources[0].apply_value(5.0, time=1.0)
    assert [u[0] for u in protocol.updates] == [0]


def test_stream_ids_and_count():
    server, _, _, _ = make_system(n_sources=4)
    assert server.stream_ids == [0, 1, 2, 3]
    assert server.n_streams == 4


def test_phase_accounting_split():
    ledger = MessageLedger()
    channel = Channel(ledger)
    sources = [StreamSource(i, 0.0, channel) for i in range(2)]

    class ProbingProtocol(RecordingProtocol):
        def initialize(self, server):
            server.probe_all()

    server = Server(channel, ProbingProtocol())
    server.initialize()
    ledger.phase = Phase.MAINTENANCE
    sources[0].apply_value(1.0, 1.0)
    assert ledger.initialization_total == 4  # 2 probes x 2 messages
    assert ledger.maintenance_total == 1
