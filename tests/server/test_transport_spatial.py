"""The spatial shard transport's contract: parallel ``-2d`` serving.

``Deployment.sharded(n, parallel=True)`` now compiles the coupled
spatial protocols onto worker processes too — the transport's vector
vocabulary (point frames, region-constraint frames, mirror scatter into
the geometric plane) behind the same epoch-stepped coordinator that
serves the scalar protocols.  The contract is unchanged: byte-identical
ledgers and answers versus sequential sharded serving across
{2, 4} shards x {event, batch} replay, checking runs included, plus the
scalar suite's crash-liveness guarantee on the spatial endpoint.
"""

import time

import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.spatial.geometry import BoxRegion
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

WORKLOAD = Workload.moving_objects(n_objects=60, horizon=40.0, seed=3)

QUERY_BOX = BoxRegion([300.0, 300.0], [700.0, 700.0])
CENTER = (500.0, 500.0)

#: All six spatial protocols — every one routes through the transport
#: (even the decomposable ones: the spatial stack is always coupled
#: through the coordinator's rank/answer merge).
SPATIAL_SPECS = {
    "no-filter-2d": QuerySpec(
        protocol="no-filter-2d", query=SpatialRangeQuery(QUERY_BOX)
    ),
    "zt-nrp-2d": QuerySpec(
        protocol="zt-nrp-2d", query=SpatialRangeQuery(QUERY_BOX)
    ),
    "ft-nrp-2d": QuerySpec(
        protocol="ft-nrp-2d",
        query=SpatialRangeQuery(QUERY_BOX),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
    "rtp-2d": QuerySpec(
        protocol="rtp-2d",
        query=SpatialKnnQuery(CENTER, 5),
        tolerance=RankTolerance(k=5, r=3),
    ),
    "zt-rp-2d": QuerySpec(
        protocol="zt-rp-2d", query=SpatialKnnQuery(CENTER, 5)
    ),
    "ft-rp-2d": QuerySpec(
        protocol="ft-rp-2d",
        query=SpatialKnnQuery(CENTER, 5),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
}


# ----------------------------------------------------------------------
# The ledger-identity grid
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["event", "batch"])
@pytest.mark.parametrize("n_shards", [2, 4])
@pytest.mark.parametrize("protocol", sorted(SPATIAL_SPECS))
def test_spatial_transport_ledger_identical_to_sequential(
    protocol, n_shards, mode
):
    engine = Engine()
    spec = SPATIAL_SPECS[protocol]
    sequential = engine.run(
        spec, WORKLOAD, Deployment.sharded(n_shards, replay_mode=mode)
    )
    parallel = engine.run(
        spec,
        WORKLOAD,
        Deployment.sharded(n_shards, parallel=True, replay_mode=mode),
    )
    assert parallel.ledger == sequential.ledger
    assert parallel.final_answer == sequential.final_answer


def test_spatial_transport_matches_single_server_too():
    # Transitivity pinned down explicitly, as in the scalar suite.
    engine = Engine()
    spec = SPATIAL_SPECS["rtp-2d"]
    single = engine.run(spec, WORKLOAD, Deployment.single())
    parallel = engine.run(
        spec, WORKLOAD, Deployment.sharded(4, parallel=True)
    )
    assert parallel.ledger == single.ledger
    assert parallel.final_answer == single.final_answer


def test_spatial_transport_accepts_zero_delay_latency():
    engine = Engine()
    spec = SPATIAL_SPECS["zt-rp-2d"]
    sequential = engine.run(
        spec, WORKLOAD, Deployment.sharded(2, latency=0)
    )
    parallel = engine.run(
        spec, WORKLOAD, Deployment.sharded(2, parallel=True, latency=0)
    )
    assert parallel.ledger == sequential.ledger
    assert parallel.final_answer == sequential.final_answer


def test_nonzero_latency_is_accepted_and_steps_the_plane():
    # Regression: nonzero models used to be rejected up front with a
    # "zero-delay channels" ValueError.  They now construct, replay,
    # and account their deferred deliveries on the in-flight plane.
    from repro.server.transport import SpatialTransportShardedServer

    trace = WORKLOAD.materialize()
    protocol = SPATIAL_SPECS["rtp-2d"].build()
    server = SpatialTransportShardedServer(trace, protocol, 2, latency=0.5)
    with server:
        server.initialize(0.0)
        server.replay(horizon=trace.horizon)
        stats = server.transport_stats()
    assert stats["in_flight_deliveries"] > 0


# ----------------------------------------------------------------------
# Checking runs: coordinator-side oracle at epoch boundaries
# ----------------------------------------------------------------------
def test_spatial_checking_runs_route_through_the_transport():
    # Regression: spatial parallel+checking used to be unreachable
    # (parallel spatial raised outright).  Checks, violations, and the
    # ledger must match the sequential checking run, and the merged
    # stats must carry the transport counters (no sequential fallback).
    engine = Engine()
    spec = SPATIAL_SPECS["rtp-2d"]
    sequential = engine.run(
        spec, WORKLOAD, Deployment.sharded(4, check_every=5)
    )
    checked = engine.run(
        spec,
        WORKLOAD,
        Deployment.sharded(4, parallel=True, check_every=5),
    )
    assert "transport" in checked.extras["replay"], "fallback is gone"
    assert checked.checks == sequential.checks > 0
    assert list(checked.violations) == list(sequential.violations)
    assert checked.ledger == sequential.ledger


def test_spatial_checking_classifies_under_zero_latency():
    engine = Engine()
    spec = SPATIAL_SPECS["ft-nrp-2d"]
    sequential = engine.run(
        spec, WORKLOAD, Deployment.sharded(2, check_every=5, latency=0)
    )
    checked = engine.run(
        spec,
        WORKLOAD,
        Deployment.sharded(2, parallel=True, check_every=5, latency=0),
    )
    assert checked.checks == sequential.checks > 0
    assert list(checked.violations) == list(sequential.violations)
    assert checked.ledger == sequential.ledger


def test_spatial_checking_requires_a_query():
    from repro.server.transport import SpatialTransportShardedServer  # noqa: F401

    spec = SPATIAL_SPECS["zt-rp-2d"]
    trace = WORKLOAD.materialize()
    protocol = spec.build()
    protocol.query = None
    from repro.api.engine import _execute_spatial_transport

    with pytest.raises(ValueError, match="checking requires a query"):
        _execute_spatial_transport(
            trace,
            protocol,
            None,
            None,
            Deployment.sharded(2, parallel=True, check_every=5),
        )


# ----------------------------------------------------------------------
# Vocabulary scope
# ----------------------------------------------------------------------
def test_spatial_transport_has_no_scalar_broadcast():
    from repro.server.transport import SpatialTransportShardedServer

    trace = WORKLOAD.materialize()
    protocol = SPATIAL_SPECS["rtp-2d"].build()
    server = SpatialTransportShardedServer(trace, protocol, 2)
    with pytest.raises(TypeError, match="per-stream regions"):
        server.broadcast(0.0, 1.0)


# ----------------------------------------------------------------------
# Worker crash: raise cleanly, never hang, never emit a partial ledger
# ----------------------------------------------------------------------
def test_spatial_worker_crash_raises_cleanly_without_hanging():
    from repro.server.transport import (
        SpatialTransportShardedServer,
        TransportError,
    )

    trace = WORKLOAD.materialize()
    protocol = SPATIAL_SPECS["rtp-2d"].build()
    server = SpatialTransportShardedServer(trace, protocol, 2)
    with server:
        server.initialize(0.0)
        workers = [server.bus.handle(index).process for index in range(2)]
        workers[1].terminate()
        workers[1].join(timeout=5.0)
        started = time.perf_counter()
        with pytest.raises(TransportError):
            server.replay(horizon=trace.horizon)
        # Liveness polling, not the 60 s receive deadline.
        assert time.perf_counter() - started < 30.0
    assert server.transport_stats().get("worker_busy_seconds") is None
    for process in workers:
        assert not process.is_alive()
