"""Nonzero latency across the process boundary: the in-flight plane.

``Deployment.sharded(n, parallel=True, latency=m)`` with a *nonzero*
model runs the shard transport with externally-stepped worker channels:
workers export their pending ``(delivery time, send seq, message)``
heap entries as columnar frames at epoch boundaries, the coordinator
merges them into one global plane, and the epoch stepper advances to
the earliest pending delivery instead of assuming quiescence.

The contract is the transport's usual one, extended to latency: the
message ledger and the final answer must be byte-identical to
sequential sharded serving under the *same* latency model, across
protocols x shard counts x replay modes — deferred deliveries, FIFO
clamps, end-of-run drains and all.
"""

import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.network.latency import (
    ExponentialLatency,
    FixedLatency,
    UniformLatency,
)
from repro.queries.knn import KnnQuery, TopKQuery
from repro.spatial.queries import SpatialKnnQuery
from repro.tolerance.rank_tolerance import RankTolerance

SCALAR_WORKLOAD = Workload.synthetic(n_streams=100, horizon=30.0, seed=7)
SPATIAL_WORKLOAD = Workload.moving_objects(n_objects=60, horizon=40.0, seed=3)

#: One coupled protocol per family, per the acceptance grid — the full
#: protocol sweep under zero delay lives in ``test_transport.py``.
SPECS = {
    "rtp": QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=5),
        tolerance=RankTolerance(k=5, r=3),
    ),
    "zt-rp": QuerySpec(protocol="zt-rp", query=KnnQuery(q=500.0, k=5)),
    "zt-rp-2d": QuerySpec(
        protocol="zt-rp-2d", query=SpatialKnnQuery((500.0, 500.0), 5)
    ),
}

#: Each protocol exercises a different model family; seeds make the
#: stochastic models reproducible (and identical across both runs — the
#: model is re-instantiated per run, never shared).
MODELS = {
    "rtp": lambda: FixedLatency(uplink=0.4, downlink=0.25),
    "zt-rp": lambda: ExponentialLatency(0.3, 0.05, seed=5),
    "zt-rp-2d": lambda: UniformLatency(0.05, 0.6, seed=11),
}


def _workload(protocol):
    return SPATIAL_WORKLOAD if protocol.endswith("-2d") else SCALAR_WORKLOAD


@pytest.mark.parametrize("mode", ["event", "batch"])
@pytest.mark.parametrize("n_shards", [2, 4])
@pytest.mark.parametrize("protocol", sorted(SPECS))
def test_nonzero_latency_ledger_identical_to_sequential(
    protocol, n_shards, mode
):
    engine = Engine()
    spec = SPECS[protocol]
    workload = _workload(protocol)
    sequential = engine.run(
        spec,
        workload,
        Deployment.sharded(
            n_shards, replay_mode=mode, latency=MODELS[protocol]()
        ),
    )
    parallel = engine.run(
        spec,
        workload,
        Deployment.sharded(
            n_shards,
            parallel=True,
            replay_mode=mode,
            latency=MODELS[protocol](),
        ),
    )
    assert parallel.ledger == sequential.ledger
    assert parallel.final_answer == sequential.final_answer


def test_transport_accounts_in_flight_deliveries():
    engine = Engine()
    report = engine.run(
        SPECS["rtp"],
        SCALAR_WORKLOAD,
        Deployment.sharded(
            2, parallel=True, latency=FixedLatency(0.4, 0.25)
        ),
    )
    transport = report.extras["replay"]["transport"]
    # Deferred traffic crossed the plane; whatever was still in flight
    # at the horizon was force-drained, mirroring the sequential
    # channels' end-of-run ``drain_in_flight``.
    assert transport["in_flight_deliveries"] > 0
    assert transport["in_flight_leaked"] >= 0


def test_checking_runs_compose_with_nonzero_latency():
    # The coordinator-side oracle sandwich must survive plane stepping:
    # quiescent records settle strictly before each delivery's reaction
    # can move the answer.
    engine = Engine()
    spec = SPECS["rtp"]
    model = lambda: FixedLatency(uplink=0.4, downlink=0.25)  # noqa: E731
    sequential = engine.run(
        spec,
        SCALAR_WORKLOAD,
        Deployment.sharded(2, check_every=5, latency=model()),
    )
    checked = engine.run(
        spec,
        SCALAR_WORKLOAD,
        Deployment.sharded(2, parallel=True, check_every=5, latency=model()),
    )
    assert checked.checks == sequential.checks > 0
    assert list(checked.violations) == list(sequential.violations)
    assert checked.ledger == sequential.ledger
    assert checked.final_answer == sequential.final_answer
