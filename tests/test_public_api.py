"""The public API surface: everything in __all__ imports and works."""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.3.0"


def test_quickstart_docstring_flow():
    """The module docstring's quickstart must actually work."""
    report = repro.Engine().run(
        repro.QuerySpec(
            protocol="ft-nrp",
            query=repro.RangeQuery(400.0, 600.0),
            tolerance=repro.FractionTolerance(eps_plus=0.2, eps_minus=0.2),
        ),
        repro.Workload.synthetic(n_streams=100, horizon=200.0, seed=7),
        repro.Deployment.single(check_every=1),
    )
    assert report.tolerance_ok


def test_quickstart_sharded_is_one_argument_change():
    """The docstring's scale-out claim: sharding changes one argument."""
    spec = repro.QuerySpec(
        protocol="ft-nrp",
        query=repro.RangeQuery(400.0, 600.0),
        tolerance=repro.FractionTolerance(eps_plus=0.2, eps_minus=0.2),
    )
    workload = repro.Workload.synthetic(n_streams=100, horizon=200.0, seed=7)
    single = repro.Engine().run(spec, workload)
    sharded = repro.Engine().run(spec, workload, repro.Deployment.sharded(4))
    assert single.ledger == sharded.ledger
    assert single.final_answer == sharded.final_answer


def test_protocol_names_are_paper_names():
    assert repro.RankToleranceProtocol.name == "RTP"
    assert repro.ZeroToleranceRangeProtocol.name == "ZT-NRP"
    assert repro.FractionToleranceRangeProtocol.name == "FT-NRP"
    assert repro.ZeroToleranceKnnProtocol.name == "ZT-RP"
    assert repro.FractionToleranceKnnProtocol.name == "FT-RP"
