"""The public API surface: everything in __all__ imports and works."""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.0.0"


def test_quickstart_docstring_flow():
    """The module docstring's quickstart must actually work."""
    trace = repro.generate_synthetic_trace(
        n_streams=100, horizon=200.0, seed=7
    )
    query = repro.RangeQuery(400.0, 600.0)
    tolerance = repro.FractionTolerance(eps_plus=0.2, eps_minus=0.2)
    protocol = repro.FractionToleranceRangeProtocol(query, tolerance)
    result = repro.run_protocol(
        trace,
        protocol,
        tolerance=tolerance,
        config=repro.RunConfig(check_every=1),
    )
    assert result.tolerance_ok


def test_protocol_names_are_paper_names():
    assert repro.RankToleranceProtocol.name == "RTP"
    assert repro.ZeroToleranceRangeProtocol.name == "ZT-NRP"
    assert repro.FractionToleranceRangeProtocol.name == "FT-NRP"
    assert repro.ZeroToleranceKnnProtocol.name == "ZT-RP"
    assert repro.FractionToleranceKnnProtocol.name == "FT-RP"
