"""Unit tests for Definition 1 (rank-based tolerance)."""

import numpy as np
import pytest

from repro.queries.knn import KnnQuery, TopKQuery
from repro.tolerance.rank_tolerance import RankTolerance


def test_eps_is_k_plus_r():
    assert RankTolerance(k=3, r=2).eps == 5


@pytest.mark.parametrize("k,r", [(0, 1), (-1, 0), (2, -1)])
def test_invalid_parameters_rejected(k, r):
    with pytest.raises(ValueError):
        RankTolerance(k=k, r=r)


def test_exact_answer_is_correct():
    values = np.array([10.0, 20.0, 30.0, 40.0])
    query = TopKQuery(k=2)
    tolerance = RankTolerance(k=2, r=0)
    assert tolerance.is_correct({2, 3}, query, values)


def test_wrong_size_is_incorrect():
    values = np.array([10.0, 20.0, 30.0, 40.0])
    query = TopKQuery(k=2)
    tolerance = RankTolerance(k=2, r=2)
    assert not tolerance.is_correct({3}, query, values)
    assert not tolerance.is_correct({1, 2, 3}, query, values)
    assert "expected exactly k" in tolerance.violation({3}, query, values)


def test_slack_admits_near_misses():
    values = np.array([10.0, 20.0, 30.0, 40.0])
    query = TopKQuery(k=2)
    # {1, 3}: ranks 3 and 1 — rank 3 needs r >= 1.
    assert not RankTolerance(k=2, r=0).is_correct({1, 3}, query, values)
    assert RankTolerance(k=2, r=1).is_correct({1, 3}, query, values)


def test_paper_example_knn_k3_r2():
    """Definition 1's example: eps = 5 admits any 3 streams ranking <= 5."""
    values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
    query = KnnQuery(q=0.0, k=3)
    tolerance = RankTolerance(k=3, r=2)
    assert tolerance.eps == 5
    assert tolerance.is_correct({0, 3, 4}, query, values)   # ranks 1, 4, 5
    assert not tolerance.is_correct({0, 1, 5}, query, values)  # rank 6


def test_mismatched_k_raises():
    values = np.array([1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        RankTolerance(k=2, r=0).is_correct({0}, TopKQuery(k=1), values)


def test_violation_message_names_offender():
    values = np.array([10.0, 20.0, 30.0, 40.0])
    query = TopKQuery(k=1)
    tolerance = RankTolerance(k=1, r=0)
    message = tolerance.violation({0}, query, values)
    assert "stream 0" in message
