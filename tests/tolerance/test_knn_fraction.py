"""Unit + property tests for the k-NN fraction-tolerance results.

Covers the answer-size bounds (Equations 7-10) and the rho+/rho-
derivation (Equations 13-16).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.knn_fraction import (
    RhoPolicy,
    answer_size_bounds,
    derive_rho,
    max_rho_minus,
)

eps_strategy = st.floats(0.0, 0.49, allow_nan=False)
k_strategy = st.integers(1, 500)


class TestAnswerSizeBounds:
    def test_paper_example(self):
        """10-NN with eps+ = 0.1 may return 11 streams (Section 3.4.1)."""
        lower, upper = answer_size_bounds(10, FractionTolerance(0.1, 0.0))
        assert upper == 11
        assert lower == 10

    def test_zero_tolerance_pins_size_to_k(self):
        assert answer_size_bounds(7, FractionTolerance(0.0, 0.0)) == (7, 7)

    @given(k_strategy, eps_strategy, eps_strategy)
    def test_equations_8_and_10(self, k, eps_plus, eps_minus):
        """With both tolerances < 0.5, k/2 <= |A| <= 2k."""
        lower, upper = answer_size_bounds(
            k, FractionTolerance(eps_plus, eps_minus)
        )
        assert lower >= k / 2
        assert upper <= 2 * k
        assert lower <= k <= upper  # |A| = k is always admissible

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            answer_size_bounds(0, FractionTolerance(0.1, 0.1))


class TestRhoFrontier:
    def test_frontier_decreases_in_rho_plus(self):
        tolerance = FractionTolerance(0.3, 0.3)
        assert max_rho_minus(0.0, tolerance) > max_rho_minus(0.1, tolerance)

    def test_frontier_clamped_at_zero(self):
        tolerance = FractionTolerance(0.1, 0.1)
        assert max_rho_minus(10.0, tolerance) == 0.0

    def test_negative_rho_plus_rejected(self):
        with pytest.raises(ValueError):
            max_rho_minus(-0.1, FractionTolerance(0.1, 0.1))

    def test_headroom_is_min_of_both_requirements(self):
        # eps+ = 0.4, eps- = 0.1: false-negative budget binds.
        tolerance = FractionTolerance(0.4, 0.1)
        assert max_rho_minus(0.0, tolerance) == pytest.approx(0.1)
        # eps+ = 0.1, eps- = 0.4: false-positive budget binds.
        tolerance = FractionTolerance(0.1, 0.4)
        assert max_rho_minus(0.0, tolerance) == pytest.approx(0.6 * 0.1)


class TestDeriveRho:
    @given(eps_strategy, eps_strategy)
    def test_all_policies_lie_on_or_under_frontier(self, ep, em):
        tolerance = FractionTolerance(ep, em)
        for policy in RhoPolicy:
            rho_plus, rho_minus = derive_rho(tolerance, policy)
            assert rho_plus >= 0.0
            assert rho_minus >= 0.0
            assert rho_minus <= max_rho_minus(rho_plus, tolerance) + 1e-12

    @given(eps_strategy, eps_strategy)
    def test_balanced_policy_equalizes(self, ep, em):
        rho_plus, rho_minus = derive_rho(
            FractionTolerance(ep, em), RhoPolicy.BALANCED
        )
        assert rho_plus == pytest.approx(rho_minus)

    def test_favor_fp_zeroes_rho_minus(self):
        rho_plus, rho_minus = derive_rho(
            FractionTolerance(0.3, 0.3), RhoPolicy.FAVOR_FP
        )
        assert rho_minus == 0.0
        assert rho_plus > 0.0

    def test_favor_fn_zeroes_rho_plus(self):
        rho_plus, rho_minus = derive_rho(
            FractionTolerance(0.3, 0.3), RhoPolicy.FAVOR_FN
        )
        assert rho_plus == 0.0
        assert rho_minus > 0.0

    def test_zero_tolerance_gives_zero_rho(self):
        for policy in RhoPolicy:
            assert derive_rho(FractionTolerance(0.0, 0.0), policy) == (0.0, 0.0)

    def test_zero_eps_plus_gives_zero_rho(self):
        """No false positives allowed => no silencers of either kind."""
        for policy in RhoPolicy:
            assert derive_rho(FractionTolerance(0.0, 0.3), policy) == (0.0, 0.0)

    @given(eps_strategy, eps_strategy)
    def test_rho_sum_within_fn_budget(self, ep, em):
        """rho+ + rho- <= eps-, needed for the initial |A| = k to satisfy
        the tightened FT-RP size triggers."""
        tolerance = FractionTolerance(ep, em)
        for policy in RhoPolicy:
            rho_plus, rho_minus = derive_rho(tolerance, policy)
            assert rho_plus + rho_minus <= em + 1e-12

    @given(eps_strategy, eps_strategy)
    def test_rho_minus_within_fp_budget(self, ep, em):
        """rho- <= eps+, needed for the initial upper trigger >= k."""
        tolerance = FractionTolerance(ep, em)
        for policy in RhoPolicy:
            _, rho_minus = derive_rho(tolerance, policy)
            assert rho_minus <= ep + 1e-12
