"""Unit + property tests for Definitions 2-3 (fraction-based tolerance)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tolerance.fraction_tolerance import FractionReport, FractionTolerance

eps_strategy = st.floats(0.0, 0.49, allow_nan=False)


class TestValidation:
    @pytest.mark.parametrize("eps", [-0.1, 0.5, 0.7, 1.0])
    def test_out_of_range_eps_plus_rejected(self, eps):
        with pytest.raises(ValueError):
            FractionTolerance(eps, 0.1)

    @pytest.mark.parametrize("eps", [-0.01, 0.5])
    def test_out_of_range_eps_minus_rejected(self, eps):
        with pytest.raises(ValueError):
            FractionTolerance(0.1, eps)

    def test_is_zero(self):
        assert FractionTolerance(0.0, 0.0).is_zero
        assert not FractionTolerance(0.1, 0.0).is_zero


class TestBudgets:
    def test_emax_plus_floor(self):
        tolerance = FractionTolerance(0.25, 0.1)
        assert tolerance.emax_plus(10) == 2
        assert tolerance.emax_plus(4) == 1
        assert tolerance.emax_plus(3) == 0

    def test_emax_plus_exact_boundary(self):
        # 0.2 * 10 = 2 exactly: the floor must not lose it to round-off.
        assert FractionTolerance(0.2, 0.0).emax_plus(10) == 2

    def test_emax_minus_paper_formula(self):
        # Emax- = |A| eps- (1 - eps+) / (1 - eps-)
        tolerance = FractionTolerance(0.2, 0.25)
        assert tolerance.emax_minus(30) == int(30 * 0.25 * 0.8 / 0.75)

    def test_zero_tolerance_budgets(self):
        tolerance = FractionTolerance(0.0, 0.0)
        assert tolerance.emax_plus(100) == 0
        assert tolerance.emax_minus(100) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FractionTolerance(0.1, 0.1).emax_plus(-1)

    @given(eps_strategy, eps_strategy, st.integers(0, 10_000))
    def test_budgets_respect_fractions(self, eps_plus, eps_minus, size):
        """An answer with exactly Emax+/Emax- errors must satisfy Def. 3."""
        tolerance = FractionTolerance(eps_plus, eps_minus)
        e_plus = tolerance.emax_plus(size)
        e_minus = tolerance.emax_minus(size)
        if size > 0:
            assert e_plus / size <= eps_plus + 1e-9
        true_size = size - e_plus + e_minus
        if true_size > 0:
            assert e_minus / true_size <= eps_minus + 1e-9


class TestReport:
    def test_report_counts(self):
        tolerance = FractionTolerance(0.4, 0.4)
        report = tolerance.report({1, 2, 3}, frozenset({2, 3, 4, 5}))
        assert report.e_plus == 1   # stream 1
        assert report.e_minus == 2  # streams 4, 5
        assert report.answer_size == 3
        assert report.true_size == 4
        assert report.f_plus == pytest.approx(1 / 3)
        assert report.f_minus == pytest.approx(2 / 4)

    def test_f_minus_denominator_is_true_size(self):
        """F- = E- / (|A| - E+ + E-), which equals E- / |T| (Eq. 2)."""
        report = FractionReport(answer_size=5, true_size=6, e_plus=2, e_minus=3)
        assert report.answer_size - report.e_plus + report.e_minus == 6
        assert report.f_minus == pytest.approx(3 / 6)

    def test_empty_answer_has_zero_f_plus(self):
        report = FractionReport(answer_size=0, true_size=3, e_plus=0, e_minus=3)
        assert report.f_plus == 0.0
        assert report.f_minus == 1.0

    def test_empty_truth_has_zero_f_minus(self):
        report = FractionReport(answer_size=2, true_size=0, e_plus=2, e_minus=0)
        assert report.f_minus == 0.0
        assert report.f_plus == 1.0


class TestSatisfaction:
    def test_exact_answer_always_satisfies(self):
        tolerance = FractionTolerance(0.0, 0.0)
        assert tolerance.is_satisfied({1, 2}, frozenset({1, 2}))

    def test_violations_detected_both_ways(self):
        tolerance = FractionTolerance(0.1, 0.1)
        assert "F+" in tolerance.violation({1, 2}, frozenset({1}))
        assert "F-" in tolerance.violation({1}, frozenset({1, 2}))

    def test_boundary_exactly_at_eps_passes(self):
        tolerance = FractionTolerance(0.25, 0.0)
        # 1 of 4 wrong: F+ = 0.25 == eps+.
        assert tolerance.is_satisfied({1, 2, 3, 9}, frozenset({1, 2, 3}))

    @given(
        st.sets(st.integers(0, 30), max_size=20),
        st.sets(st.integers(0, 30), max_size=20),
        eps_strategy,
        eps_strategy,
    )
    def test_violation_consistent_with_report(self, answer, truth, ep, em):
        tolerance = FractionTolerance(ep, em)
        report = tolerance.report(answer, truth)
        ok = report.f_plus <= ep + 1e-12 and report.f_minus <= em + 1e-12
        assert (tolerance.violation(answer, truth) is None) == ok
