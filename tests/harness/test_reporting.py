"""Unit tests for text-table reporting."""

from repro.harness.reporting import format_series, format_table


def test_format_table_aligns_columns():
    rows = [{"a": 1, "b": "xy"}, {"a": 100, "b": "z"}]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("a")
    assert "100" in lines[3]
    # All rows share the same width.
    assert len(lines[2]) == len(lines[3])


def test_format_table_empty():
    assert "(no rows)" in format_table([])
    assert format_table([], title="T").startswith("T")


def test_format_table_column_selection():
    rows = [{"a": 1, "b": 2, "c": 3}]
    text = format_table(rows, columns=["c", "a"])
    header = text.splitlines()[0]
    assert "c" in header and "a" in header and "b" not in header


def test_format_table_title():
    text = format_table([{"a": 1}], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_format_series_layout():
    text = format_series(
        "x", [1, 2], {"up": [10, 20], "down": [20, 10]}, title="S"
    )
    lines = text.splitlines()
    assert lines[0] == "S"
    assert "up" in lines[1] and "down" in lines[1]
    assert len(lines) == 5  # title, header, rule, two rows


def test_format_series_handles_short_series():
    text = format_series("x", [1, 2, 3], {"y": [5]})
    assert text  # no crash; missing cells rendered empty


def test_float_formatting():
    text = format_table([{"v": 3.0}, {"v": 3.14159}, {"v": None}])
    assert "3" in text
    assert "3.142" in text
