"""Smoke tests for benchmarks/plot_trajectory.py (the perf-trajectory
summarizer CI runs over the accumulated BENCH_*.json artifacts)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "plot_trajectory.py"
)


@pytest.fixture(scope="module")
def trajectory():
    spec = importlib.util.spec_from_file_location("plot_trajectory", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_artifacts(root: Path, label: str, speedup: float) -> None:
    commit = root / label
    commit.mkdir(parents=True)
    (commit / "BENCH_runtime_replay.json").write_text(
        json.dumps({"value_window_speedup": speedup})
    )
    (commit / "BENCH_state_engine.json").write_text(
        json.dumps(
            {
                "recompute": [
                    {"n_streams": 1000, "speedup": 50.0},
                    {"n_streams": 20000, "speedup": 99.0},
                ],
                "point_update": [],
            }
        )
    )
    (commit / "BENCH_spatial.json").write_text(
        json.dumps({"batched_replay": {"speedup": 4.5}})
    )


def test_summarize_across_commits(trajectory, tmp_path):
    _write_artifacts(tmp_path, "commit-a", 3.0)
    _write_artifacts(tmp_path, "commit-b", 3.5)
    runs = trajectory.discover([tmp_path])
    assert sorted(runs) == ["commit-a", "commit-b"]
    summary = trajectory.summarize(runs)
    assert summary["metrics"]["replay_filtering_speedup"] == {
        "commit-a": 3.0,
        "commit-b": 3.5,
    }
    # Largest-n row wins for per-size sections; empty sections vanish.
    assert summary["metrics"]["state_recompute_speedup"]["commit-a"] == 99.0
    assert "state_point_update_speedup" not in summary["metrics"]
    assert summary["metrics"]["spatial_batch_speedup"]["commit-b"] == 4.5
    text = trajectory.format_summary(summary)
    assert "commit-a" in text and "3.50x" in text


def test_main_writes_json_and_handles_missing(trajectory, tmp_path, capsys):
    _write_artifacts(tmp_path, "only", 2.0)
    out = tmp_path / "summary.json"
    code = trajectory.main([str(tmp_path), "--json", str(out)])
    assert code == 0
    written = json.loads(out.read_text())
    assert written["runs"] == ["only"]
    capsys.readouterr()

    empty = tmp_path / "empty"
    empty.mkdir()
    assert trajectory.main([str(empty)]) == 1


def test_same_basename_roots_do_not_collapse(trajectory, tmp_path):
    """Two commits' downloads as run1/bench-artifacts and
    run2/bench-artifacts must stay two distinct runs."""
    _write_artifacts(tmp_path / "run1", "bench-artifacts", 2.0)
    _write_artifacts(tmp_path / "run2", "bench-artifacts", 9.0)
    runs = trajectory.discover(
        [tmp_path / "run1", tmp_path / "run2"]
    )
    assert len(runs) == 2
    summary = trajectory.summarize(runs)
    values = summary["metrics"]["replay_filtering_speedup"]
    assert sorted(values.values()) == [2.0, 9.0]


def test_corrupt_artifact_is_skipped(trajectory, tmp_path, capsys):
    commit = tmp_path / "bad"
    commit.mkdir()
    (commit / "BENCH_sharded.json").write_text("{not json")
    assert trajectory.discover([tmp_path]) == {}
    assert "skipping" in capsys.readouterr().err
