"""Unit tests for sweep helpers."""

from repro.harness.sweep import run_grid, sweep_values


def test_sweep_values_passes_parameter():
    results = sweep_values(lambda x: x * 2, "x", [1, 2, 3])
    assert results == [2, 4, 6]


def test_run_grid_cartesian_product():
    rows = run_grid(lambda a, b: a + b, {"a": [1, 2], "b": [10, 20]})
    assert len(rows) == 4
    assert rows[0] == {"a": 1, "b": 10, "result": 11}
    # Nested-loop order: a varies slowest.
    assert [(r["a"], r["b"]) for r in rows] == [
        (1, 10), (1, 20), (2, 10), (2, 20)
    ]


def test_run_grid_single_axis():
    rows = run_grid(lambda k: k**2, {"k": [3]})
    assert rows == [{"k": 3, "result": 9}]


def test_run_grid_empty_axis():
    assert run_grid(lambda k: k, {"k": []}) == []
