"""Unit tests for sweep helpers."""

from repro.harness.sweep import run_grid, sweep_values


def test_sweep_values_passes_parameter():
    results = sweep_values(lambda x: x * 2, "x", [1, 2, 3])
    assert results == [2, 4, 6]


def test_run_grid_cartesian_product():
    rows = run_grid(lambda a, b: a + b, {"a": [1, 2], "b": [10, 20]})
    assert len(rows) == 4
    assert rows[0] == {"a": 1, "b": 10, "result": 11}
    # Nested-loop order: a varies slowest.
    assert [(r["a"], r["b"]) for r in rows] == [
        (1, 10), (1, 20), (2, 10), (2, 20)
    ]


def test_run_grid_single_axis():
    rows = run_grid(lambda k: k**2, {"k": [3]})
    assert rows == [{"k": 3, "result": 9}]


def test_run_grid_empty_axis():
    assert run_grid(lambda k: k, {"k": []}) == []


def _double(x):
    return x * 2


def _add(a, b):
    return a + b


def test_sweep_values_parallel_matches_serial():
    serial = sweep_values(_double, "x", [1, 2, 3, 4])
    parallel = sweep_values(_double, "x", [1, 2, 3, 4], parallel=True)
    assert parallel == serial == [2, 4, 6, 8]


def test_run_grid_parallel_preserves_order():
    serial = run_grid(_add, {"a": [1, 2], "b": [10, 20]})
    parallel = run_grid(_add, {"a": [1, 2], "b": [10, 20]}, parallel=True)
    assert parallel == serial


def test_parallel_single_job_stays_in_process():
    # One combination short-circuits the pool entirely; lambdas are fine.
    assert run_grid(lambda k: k**2, {"k": [3]}, parallel=True) == [
        {"k": 3, "result": 9}
    ]


def test_parallel_max_workers_accepted():
    rows = run_grid(_add, {"a": [1, 2, 3], "b": [5]}, parallel=True,
                    max_workers=2)
    assert [r["result"] for r in rows] == [6, 7, 8]
