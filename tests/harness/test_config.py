"""RunConfig validation: bad knobs fail construction, not mid-replay."""

import pytest

from repro.harness.config import RunConfig
from repro.runtime.session import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MIN_CHUNK,
    REPLAY_MODES,
)


def test_defaults_are_valid_and_frozen():
    config = RunConfig()
    assert config.replay_mode == "auto"
    assert config.batch_size == DEFAULT_BATCH_SIZE
    assert config.min_chunk == DEFAULT_MIN_CHUNK
    assert config.check_every == 0
    with pytest.raises(AttributeError):
        config.check_every = 3


@pytest.mark.parametrize("mode", REPLAY_MODES)
def test_every_documented_replay_mode_is_accepted(mode):
    assert RunConfig(replay_mode=mode).replay_mode == mode


@pytest.mark.parametrize("mode", ["fast", "", "AUTO", "batched"])
def test_unknown_replay_modes_are_rejected_with_the_choices(mode):
    with pytest.raises(ValueError, match=r"auto.*event.*batch"):
        RunConfig(replay_mode=mode)


def test_non_string_replay_mode_is_a_type_error():
    with pytest.raises(TypeError, match="replay_mode must be a str"):
        RunConfig(replay_mode=3)


@pytest.mark.parametrize("batch_size", [0, -1, -4096])
def test_non_positive_batch_sizes_are_rejected(batch_size):
    with pytest.raises(ValueError, match="batch_size must be >= 1"):
        RunConfig(batch_size=batch_size)


@pytest.mark.parametrize("batch_size", [2.5, "64", None, True])
def test_non_int_batch_sizes_are_type_errors(batch_size):
    with pytest.raises(TypeError, match="batch_size must be an int"):
        RunConfig(batch_size=batch_size)


@pytest.mark.parametrize("min_chunk", [0, -1, -32])
def test_non_positive_min_chunks_are_rejected(min_chunk):
    with pytest.raises(ValueError, match="min_chunk must be >= 1"):
        RunConfig(min_chunk=min_chunk)


@pytest.mark.parametrize("min_chunk", [2.5, "32", None, True])
def test_non_int_min_chunks_are_type_errors(min_chunk):
    with pytest.raises(TypeError, match="min_chunk must be an int"):
        RunConfig(min_chunk=min_chunk)


def test_min_chunk_above_batch_size_is_allowed():
    """batch_size caps every scan, so an oversized floor is harmless."""
    config = RunConfig(batch_size=4, min_chunk=64)
    assert config.min_chunk == 64


def test_negative_check_every_is_rejected():
    with pytest.raises(ValueError, match="check_every must be >= 0"):
        RunConfig(check_every=-1)


@pytest.mark.parametrize("check_every", [1.5, "2", True])
def test_non_int_check_every_is_a_type_error(check_every):
    with pytest.raises(TypeError, match="check_every must be an int"):
        RunConfig(check_every=check_every)


def test_deployment_inherits_the_validation():
    """Deployment reuses RunConfig's checks for the shared knobs."""
    from repro.api import Deployment

    with pytest.raises(TypeError, match="batch_size"):
        Deployment.single(batch_size="big")
    with pytest.raises(ValueError, match="replay_mode"):
        Deployment.sharded(2, replay_mode="warp")
    with pytest.raises(ValueError, match="min_chunk"):
        Deployment.single(min_chunk=0)


def test_min_chunk_round_trips_through_deployment():
    """Deployment carries the knob into its RunConfig projection."""
    from repro.api import Deployment

    deployment = Deployment.single(batch_size=512, min_chunk=8)
    config = deployment.run_config()
    assert config.batch_size == 512
    assert config.min_chunk == 8
    assert Deployment.from_run_config(config).min_chunk == 8
