"""Integration tests for the run loop."""

import numpy as np
import pytest

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.protocols.no_filter import NoFilterProtocol
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.queries.range_query import RangeQuery
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance

QUERY = RangeQuery(400.0, 600.0)


def test_result_fields(small_trace):
    result = run_protocol(small_trace, ZeroToleranceRangeProtocol(QUERY))
    assert result.protocol == "ZT-NRP"
    assert result.n_streams == small_trace.n_streams
    assert result.n_records == small_trace.n_records
    assert result.total_messages == (
        result.initialization_messages + result.maintenance_messages
    )
    assert result.maintenance_messages == (
        result.update_messages
        + result.probe_messages
        + result.constraint_messages
    )


def test_checker_disabled_by_default(small_trace):
    result = run_protocol(small_trace, ZeroToleranceRangeProtocol(QUERY))
    assert result.checker is None
    assert result.tolerance_ok  # vacuous


def test_checking_requires_query_when_protocol_lacks_one(small_trace):
    class Bare(NoFilterProtocol):
        def __init__(self):
            super().__init__(QUERY)
            del self.query  # simulate a protocol without .query

    # NoFilterProtocol keeps .query; build a truly bare double instead.
    protocol = ZeroToleranceRangeProtocol(QUERY)
    del protocol.query
    with pytest.raises(ValueError):
        run_protocol(
            small_trace, protocol, config=RunConfig(check_every=1)
        )


def test_label_propagates(small_trace):
    result = run_protocol(
        small_trace,
        ZeroToleranceRangeProtocol(QUERY),
        config=RunConfig(label="my-run"),
    )
    assert result.label == "my-run"
    assert result.row()["label"] == "my-run"


def test_row_contains_extras(small_trace):
    tolerance = FractionTolerance(0.2, 0.2)
    result = run_protocol(
        small_trace,
        FractionToleranceRangeProtocol(QUERY, tolerance),
        tolerance=tolerance,
    )
    row = result.row()
    assert "n_plus" in row
    assert row["protocol"] == "FT-NRP"


def test_empty_trace_runs(manual_trace):
    empty = manual_trace.truncate(0.0)
    result = run_protocol(empty, ZeroToleranceRangeProtocol(QUERY))
    assert result.maintenance_messages == 0
    assert result.n_records == 0


def test_sampled_checking_counts(small_trace):
    result = run_protocol(
        small_trace,
        ZeroToleranceRangeProtocol(QUERY),
        config=RunConfig(check_every=10),
    )
    # one check at t0 plus every 10th record
    expected = 1 + (small_trace.n_records + 9) // 10
    assert result.checker.checks == expected


def test_same_trace_same_result(small_trace):
    a = run_protocol(small_trace, ZeroToleranceRangeProtocol(QUERY))
    b = run_protocol(small_trace, ZeroToleranceRangeProtocol(QUERY))
    assert a.maintenance_messages == b.maintenance_messages
    assert a.final_answer == b.final_answer


def test_simultaneous_records_processed_in_order():
    trace = StreamTrace(
        initial_values=np.array([0.0]),
        times=np.array([1.0, 1.0, 1.0]),
        stream_ids=np.array([0, 0, 0]),
        values=np.array([500.0, 700.0, 500.0]),
        horizon=2.0,
    )
    result = run_protocol(
        trace,
        ZeroToleranceRangeProtocol(QUERY),
        config=RunConfig(check_every=1, strict=True),
    )
    # enter, leave, enter: three crossings, final answer includes stream 0.
    assert result.maintenance_messages == 3
    assert result.final_answer == frozenset({0})
