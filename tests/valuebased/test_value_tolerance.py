"""Tests for the value-based tolerance comparator (Figure 1 prior art)."""

import numpy as np
import pytest

from repro.network.accounting import MessageLedger
from repro.network.channel import Channel
from repro.queries.knn import TopKQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.streams.trace import StreamTrace
from repro.valuebased.protocol import (
    ValueToleranceTopKProtocol,
    run_value_tolerance,
)
from repro.valuebased.source import WindowFilterSource


@pytest.fixture(scope="module")
def trace():
    return generate_synthetic_trace(
        SyntheticConfig(n_streams=100, horizon=200.0, seed=5)
    )


class TestWindowFilterSource:
    def make(self, width, initial=10.0):
        ledger = MessageLedger()
        channel = Channel(ledger)
        received = []
        channel.bind_server(received.append)
        source = WindowFilterSource(0, initial, channel, width=width)
        return source, received

    def test_reports_only_outside_window(self):
        source, received = self.make(width=10.0)
        source.apply_value(14.0, 1.0)  # inside +-5
        assert received == []
        source.apply_value(15.5, 2.0)  # escapes
        assert len(received) == 1

    def test_window_recenters_after_report(self):
        source, received = self.make(width=10.0)
        source.apply_value(16.0, 1.0)  # report, recenter at 16
        source.apply_value(20.0, 2.0)  # inside new window [11, 21]
        assert len(received) == 1
        source.apply_value(22.0, 3.0)  # escapes new window
        assert len(received) == 2

    def test_zero_width_reports_every_change(self):
        source, received = self.make(width=0.0)
        source.apply_value(10.0001, 1.0)
        source.apply_value(10.0002, 2.0)
        assert len(received) == 2

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            self.make(width=-1.0)


class TestProtocol:
    def test_answer_from_known_values(self):
        protocol = ValueToleranceTopKProtocol(TopKQuery(k=2), eps=10.0)
        protocol.seed({0: 1.0, 1: 5.0, 2: 3.0})
        assert protocol.answer == frozenset({1, 2})
        protocol.on_update(0, 100.0)
        assert protocol.answer == frozenset({0, 1})

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError):
            ValueToleranceTopKProtocol(TopKQuery(k=1), eps=-1.0)

    def test_answer_before_seed_is_empty(self):
        assert ValueToleranceTopKProtocol(TopKQuery(k=1), 1.0).answer == frozenset()


class TestRun:
    def test_value_guarantee_always_held(self, trace):
        for eps in (5.0, 50.0, 500.0):
            result = run_value_tolerance(trace, TopKQuery(k=5), eps)
            assert result.value_guarantee_held, eps

    def test_messages_decrease_with_eps(self, trace):
        small = run_value_tolerance(trace, TopKQuery(k=5), 5.0, check_every=0)
        large = run_value_tolerance(trace, TopKQuery(k=5), 500.0, check_every=0)
        assert large.maintenance_messages < small.maintenance_messages

    def test_rank_quality_degrades_with_eps(self, trace):
        tight = run_value_tolerance(trace, TopKQuery(k=5), 5.0)
        loose = run_value_tolerance(trace, TopKQuery(k=5), 800.0)
        assert loose.worst_rank > tight.worst_rank

    def test_worst_rank_at_least_k(self):
        trace = StreamTrace(
            initial_values=np.array([1.0, 2.0, 3.0]),
            times=np.array([1.0]),
            stream_ids=np.array([0]),
            values=np.array([1.5]),
            horizon=2.0,
        )
        result = run_value_tolerance(trace, TopKQuery(k=2), 1000.0)
        assert result.worst_rank >= 2
