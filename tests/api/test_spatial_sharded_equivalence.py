"""The sharded spatial topology's contract, mirroring the scalar suite
(``test_sharded_equivalence.py``) as the ISSUE acceptance states it:

``Engine.run(spec, workload, Deployment.sharded(n))`` produces message
ledgers byte-identical to ``Deployment.single()`` for every spatial
``-2d`` protocol on the moving-objects workloads, across shard counts
{2, 4} and both replay modes — i.e. the whole
``{single, sharded(2), sharded(4)} × {per-event, batched}`` grid
collapses to one ledger per (protocol, workload).
"""

import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.spatial.geometry import BoxRegion
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

QUERY_BOX = BoxRegion([300.0, 300.0], [700.0, 700.0])
CENTER = (500.0, 500.0)

#: All six spatial protocols, sized for an 80-object population.
SPATIAL_SPECS = {
    "no-filter-2d": QuerySpec(
        protocol="no-filter-2d", query=SpatialRangeQuery(QUERY_BOX)
    ),
    "zt-nrp-2d": QuerySpec(
        protocol="zt-nrp-2d", query=SpatialRangeQuery(QUERY_BOX)
    ),
    "ft-nrp-2d": QuerySpec(
        protocol="ft-nrp-2d",
        query=SpatialRangeQuery(QUERY_BOX),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
    "rtp-2d": QuerySpec(
        protocol="rtp-2d",
        query=SpatialKnnQuery(CENTER, 5),
        tolerance=RankTolerance(k=5, r=3),
    ),
    "zt-rp-2d": QuerySpec(
        protocol="zt-rp-2d", query=SpatialKnnQuery(CENTER, 5)
    ),
    "ft-rp-2d": QuerySpec(
        protocol="ft-rp-2d",
        query=SpatialKnnQuery(CENTER, 5),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
}

#: Two regimes: lively (default sigma) and filtering (small steps, the
#: regime where the batched pre-scan stages most records).
WORKLOADS = {
    "lively": Workload.moving_objects(n_objects=80, horizon=120.0, seed=3),
    "filtering": Workload.moving_objects(
        n_objects=80, horizon=120.0, sigma=4.0, seed=3
    ),
}


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("protocol", sorted(SPATIAL_SPECS))
def test_spatial_grid_collapses_to_one_ledger(protocol, workload_name):
    engine = Engine()
    spec = SPATIAL_SPECS[protocol]
    workload = WORKLOADS[workload_name]
    base = engine.run(spec, workload, Deployment.single(replay_mode="event"))
    for n_shards in (1, 2, 4):
        for mode in ("event", "batch"):
            deployment = (
                Deployment.single(replay_mode=mode)
                if n_shards == 1
                else Deployment.sharded(n_shards, replay_mode=mode)
            )
            report = engine.run(spec, workload, deployment)
            assert report.ledger == base.ledger, (
                f"{protocol} {deployment.describe()} {mode} diverged"
            )
            assert report.final_answer == base.final_answer


def test_sharded_spatial_checking_matches_single():
    """Continuous tolerance checking runs identically when sharded."""
    engine = Engine()
    spec = SPATIAL_SPECS["rtp-2d"]
    workload = WORKLOADS["lively"]
    single = engine.run(
        spec, workload, Deployment.single(check_every=5)
    )
    sharded = engine.run(
        spec, workload, Deployment.sharded(3, check_every=5)
    )
    assert single.violations == ()
    assert sharded.violations == ()
    assert sharded.checks == single.checks
    assert sharded.ledger == single.ledger


def test_sharded_spatial_extras_match_single():
    """Protocol-internal counters (recompute/expansion) are identical —
    the protocol cannot tell which topology it runs on."""
    engine = Engine()
    spec = SPATIAL_SPECS["ft-rp-2d"]
    workload = WORKLOADS["lively"]
    single = engine.run(spec, workload, Deployment.single())
    sharded = engine.run(spec, workload, Deployment.sharded(4))
    # extras["replay"] is an execution diagnostic, not protocol state.
    strip = lambda e: {k: v for k, v in e.items() if k != "replay"}  # noqa: E731
    assert strip(sharded.extras) == strip(single.extras)
