"""Old entrypoints must warn — and return ledger-identical results."""

import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.harness.config import RunConfig
from repro.queries.knn import TopKQuery
from repro.queries.range_query import RangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

WORKLOAD = Workload.synthetic(n_streams=60, horizon=80.0, seed=9)


def test_run_protocol_shim_warns_and_matches_engine():
    from repro.harness.runner import run_protocol
    from repro.protocols.rtp import RankToleranceProtocol

    tolerance = RankTolerance(k=4, r=2)
    trace = WORKLOAD.materialize()
    with pytest.warns(DeprecationWarning, match="run_protocol is deprecated"):
        legacy = run_protocol(
            trace,
            RankToleranceProtocol(TopKQuery(k=4), tolerance),
            tolerance=tolerance,
            config=RunConfig(check_every=5),
        )
    report = Engine().run(
        QuerySpec(
            protocol="rtp", query=TopKQuery(k=4), tolerance=tolerance
        ),
        WORKLOAD,
        Deployment.single(check_every=5),
    )
    assert legacy.ledger == report.ledger
    assert legacy.final_answer == report.final_answer
    assert legacy.checker is not None and legacy.checker.ok


def test_run_multi_query_shim_warns_and_matches_engine():
    from repro.multiquery.runner import run_multi_query
    from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol

    query = RangeQuery(400.0, 600.0)
    trace = WORKLOAD.materialize()
    with pytest.warns(
        DeprecationWarning, match="run_multi_query is deprecated"
    ):
        legacy = run_multi_query(
            trace, {"q": (ZeroToleranceRangeProtocol(query), query, None)}
        )
    report = Engine().run_queries(
        {"q": QuerySpec(protocol="zt-nrp", query=query)}, WORKLOAD
    )
    assert legacy.ledger == report.ledger
    assert legacy.answers == report.answers


def test_run_spatial_protocol_shim_warns_and_matches_engine():
    from repro.spatial.protocols import SpatialFractionRangeProtocol
    from repro.spatial.queries import SpatialRangeQuery
    from repro.spatial.geometry import BoxRegion
    from repro.spatial.runner import run_spatial_protocol

    workload = Workload.moving_objects(n_objects=25, horizon=40.0, seed=4)
    trace = workload.materialize()
    box = SpatialRangeQuery(BoxRegion((200.0, 200.0), (800.0, 800.0)))
    tolerance = FractionTolerance(0.25, 0.25)
    with pytest.warns(
        DeprecationWarning, match="run_spatial_protocol is deprecated"
    ):
        legacy = run_spatial_protocol(
            trace,
            SpatialFractionRangeProtocol(box, tolerance),
            tolerance=tolerance,
        )
    report = Engine().run(
        QuerySpec(protocol="ft-nrp-2d", query=box, tolerance=tolerance),
        workload,
    )
    assert legacy.ledger == report.ledger
    assert legacy.final_answer == report.final_answer


def test_sweep_shims_warn_and_match():
    from repro.api import run_grid as api_run_grid
    from repro.api import sweep_values as api_sweep_values
    from repro.harness.sweep import run_grid, sweep_values

    def square(x=0):
        return x * x

    with pytest.warns(DeprecationWarning, match="sweep_values is deprecated"):
        legacy = sweep_values(square, "x", [1, 2, 3])
    assert legacy == api_sweep_values(square, "x", [1, 2, 3]) == [1, 4, 9]

    with pytest.warns(DeprecationWarning, match="run_grid is deprecated"):
        legacy_grid = run_grid(square, {"x": [2, 3]})
    assert legacy_grid == api_run_grid(square, {"x": [2, 3]})
    assert [row["result"] for row in legacy_grid] == [4, 9]
