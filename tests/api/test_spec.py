"""Validation and value-semantics of the declarative vocabulary."""

import pytest

from repro.api import Deployment, QuerySpec, Workload
from repro.queries.knn import TopKQuery
from repro.queries.range_query import RangeQuery
from repro.tolerance.rank_tolerance import RankTolerance


# ----------------------------------------------------------------------
# QuerySpec
# ----------------------------------------------------------------------
def test_query_spec_rejects_unknown_protocol():
    with pytest.raises(ValueError, match="unknown protocol"):
        QuerySpec(protocol="nope", query=RangeQuery(0.0, 1.0))


def test_query_spec_normalizes_protocol_case():
    spec = QuerySpec(protocol="ZT-NRP", query=RangeQuery(0.0, 1.0))
    assert spec.protocol == "zt-nrp"
    assert spec.stack == "streams"


def test_query_spec_requires_query():
    with pytest.raises(ValueError, match="requires a query"):
        QuerySpec(protocol="zt-nrp", query=None)


def test_query_spec_tolerance_required_for_tolerant_protocols():
    spec = QuerySpec(protocol="rtp", query=TopKQuery(k=3))
    with pytest.raises(ValueError, match="requires a tolerance"):
        spec.build()


def test_query_spec_builds_fresh_instances():
    spec = QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=3),
        tolerance=RankTolerance(k=3, r=2),
    )
    first, second = spec.build(), spec.build()
    assert first is not second
    assert first.name == "RTP"


def test_query_spec_value_eps_requires_eps_option():
    with pytest.raises(ValueError, match="eps"):
        QuerySpec(protocol="value-eps", query=TopKQuery(k=3))
    spec = QuerySpec(
        protocol="value-eps", query=TopKQuery(k=3), options={"eps": 10.0}
    )
    assert spec.stack == "valuebased"


def test_query_spec_options_flow_to_protocol():
    spec = QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=3),
        tolerance=RankTolerance(k=3, r=2),
        options={"expand_search": False},
    )
    assert spec.build().expand_search is False


def test_spatial_protocol_names_map_to_spatial_stack():
    from repro.spatial.geometry import BoxRegion
    from repro.spatial.queries import SpatialRangeQuery

    spec = QuerySpec(
        protocol="zt-nrp-2d",
        query=SpatialRangeQuery(BoxRegion((0.0, 0.0), (1.0, 1.0))),
    )
    assert spec.stack == "spatial"
    assert spec.build().name == "ZT-NRP-2d"


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def test_workload_materialize_caches_and_is_deterministic():
    workload = Workload.synthetic(n_streams=20, horizon=30.0, seed=5)
    first = workload.materialize()
    assert workload.materialize() is first
    again = Workload.synthetic(n_streams=20, horizon=30.0, seed=5)
    assert (again.materialize().values == first.values).all()


def test_workload_equality_survives_materialization():
    # The cached trace is derived state: it must not participate in
    # equality (ndarray comparison inside __eq__ would also raise).
    a = Workload.synthetic(n_streams=10, horizon=5.0, seed=1)
    b = Workload.synthetic(n_streams=10, horizon=5.0, seed=1)
    assert a == b
    a.materialize()
    assert a == b
    b.materialize()
    assert a == b
    assert a != Workload.synthetic(n_streams=10, horizon=5.0, seed=2)


def test_workload_from_trace_wraps_verbatim():
    trace = Workload.synthetic(n_streams=5, horizon=10.0, seed=0).materialize()
    assert Workload.from_trace(trace).materialize() is trace


def test_workload_rejects_unknown_kind():
    with pytest.raises(ValueError, match="kind"):
        Workload(kind="csv")
    with pytest.raises(ValueError, match="trace"):
        Workload(kind="trace")


# ----------------------------------------------------------------------
# Deployment
# ----------------------------------------------------------------------
def test_deployment_constructors_and_describe():
    assert Deployment.single().describe() == "single"
    assert Deployment.sharded(4).describe() == "sharded(4)"


def test_deployment_rejects_inconsistent_shapes():
    with pytest.raises(ValueError, match="one of"):
        Deployment(topology="mesh")
    with pytest.raises(ValueError, match="exactly one shard"):
        Deployment(topology="single", n_shards=3)
    with pytest.raises(ValueError, match="n_shards >= 2"):
        Deployment.sharded(1)
    with pytest.raises(TypeError, match="int"):
        Deployment.sharded(True)


def test_deployment_validates_run_config_knobs_eagerly():
    with pytest.raises(ValueError, match="replay_mode"):
        Deployment.single(replay_mode="fast")
    with pytest.raises(ValueError, match="batch_size"):
        Deployment.single(batch_size=0)
    with pytest.raises(ValueError, match="check_every"):
        Deployment.single(check_every=-1)


def test_deployment_run_config_round_trip():
    deployment = Deployment.single(
        replay_mode="event", batch_size=128, check_every=3, strict=True
    )
    config = deployment.run_config(label="x")
    assert (config.replay_mode, config.batch_size) == ("event", 128)
    assert (config.check_every, config.strict, config.label) == (3, True, "x")
    lifted = Deployment.from_run_config(config)
    assert lifted == deployment


def test_with_checking_returns_updated_copy():
    base = Deployment.sharded(2)
    checked = base.with_checking(5)
    assert checked.check_every == 5 and checked.n_shards == 2
    assert base.check_every == 0
