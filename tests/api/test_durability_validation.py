"""Up-front rejection of incompatible durability knob combinations.

Every unsupported pairing must fail at :class:`Deployment` construction
(or, for stack-level mismatches, at engine dispatch) with an error that
names the conflict — never silently degrade to a non-durable run.
"""

import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.durability import DurabilityPolicy
from repro.queries.range_query import RangeQuery
from repro.spatial.geometry import BoxRegion
from repro.spatial.queries import SpatialRangeQuery


def _policy(tmp_path) -> DurabilityPolicy:
    return DurabilityPolicy(run_dir=str(tmp_path / "run"))


def test_durable_requires_a_policy_object(tmp_path):
    with pytest.raises(TypeError, match="DurabilityPolicy"):
        Deployment.single(durable=str(tmp_path))


def test_durable_rejects_parallel_transport(tmp_path):
    with pytest.raises(ValueError, match="parallel"):
        Deployment.sharded(2, parallel=True, durable=_policy(tmp_path))


def test_durable_rejects_latency_models(tmp_path):
    with pytest.raises(ValueError, match="latency"):
        Deployment.single(latency=1.0, durable=_policy(tmp_path))


def test_durable_rejects_checking(tmp_path):
    with pytest.raises(ValueError, match="check_every"):
        Deployment.single(check_every=10, durable=_policy(tmp_path))


def test_durable_rejects_spatial_stack(tmp_path):
    spec = QuerySpec(
        protocol="zt-nrp-2d",
        query=SpatialRangeQuery(BoxRegion((400.0, 400.0), (600.0, 600.0))),
    )
    workload = Workload.moving_objects(n_objects=20, horizon=20.0, seed=1)
    with pytest.raises(ValueError, match="spatial"):
        Engine().run(spec, workload, Deployment.single(durable=_policy(tmp_path)))


def test_durable_rejects_multiquery_stack(tmp_path):
    specs = {
        "q": QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))
    }
    workload = Workload.synthetic(n_streams=20, horizon=20.0, seed=1)
    with pytest.raises(ValueError, match="multi-query"):
        Engine().run_queries(
            specs, workload, Deployment.single(durable=_policy(tmp_path))
        )


def test_durable_rejects_value_window_stack(tmp_path):
    spec = QuerySpec(
        protocol="value-eps",
        query=RangeQuery(400.0, 600.0),
        options={"eps": 50.0},
    )
    workload = Workload.synthetic(n_streams=20, horizon=20.0, seed=1)
    with pytest.raises(ValueError, match="value-window"):
        Engine().run(spec, workload, Deployment.single(durable=_policy(tmp_path)))


def test_policy_validates_its_own_knobs(tmp_path):
    with pytest.raises(ValueError, match="fsync"):
        DurabilityPolicy(run_dir=str(tmp_path), fsync="sometimes")
    with pytest.raises(ValueError, match="storage"):
        DurabilityPolicy(run_dir=str(tmp_path), storage="tape")
    with pytest.raises(ValueError, match="segment_records"):
        DurabilityPolicy(run_dir=str(tmp_path), segment_records=0)
    with pytest.raises(ValueError, match="fsync_interval"):
        DurabilityPolicy(run_dir=str(tmp_path), fsync_interval=0)
    with pytest.raises(ValueError, match="snapshot_every"):
        DurabilityPolicy(run_dir=str(tmp_path), snapshot_every=-1)


def test_durable_deployments_stay_hashable_and_describable(tmp_path):
    policy = _policy(tmp_path)
    deployment = Deployment.sharded(2, durable=policy)
    assert hash(deployment) == hash(Deployment.sharded(2, durable=policy))
    assert deployment.describe() == "sharded(2)+durable"
    assert Deployment.single().describe() == "single"


def test_mmap_policy_rejected_for_container_planes(tmp_path):
    """storage='mmap' cannot back the object-dtype containers column;
    the table refuses allocation with an actionable error."""
    from repro.state.table import StreamStateTable

    table = StreamStateTable(
        4, storage="mmap", plane_dir=str(tmp_path / "planes")
    )
    with pytest.raises(ValueError, match="mmap"):
        table._ensure_containers()
