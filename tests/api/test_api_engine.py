"""Engine behaviour across stacks, topologies and schedules."""

import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload, run
from repro.queries.knn import TopKQuery
from repro.queries.range_query import RangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

WORKLOAD = Workload.synthetic(n_streams=80, horizon=120.0, seed=3)
RANGE_SPEC = QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))


def test_run_report_shape_and_metrics():
    report = Engine().run(RANGE_SPEC, WORKLOAD, label="demo")
    assert report.protocol == "ZT-NRP"
    assert report.stack == "streams"
    assert report.topology == "single"
    assert report.label == "demo"
    assert report.n_streams == 80
    assert report.maintenance_messages == report.ledger.maintenance_total
    assert report.wall_seconds > 0
    assert report.tolerance_ok
    assert report.row()["messages"] == report.maintenance_messages


def test_engine_accepts_bare_trace_as_workload():
    trace = WORKLOAD.materialize()
    by_value = Engine().run(RANGE_SPEC, WORKLOAD)
    by_trace = Engine().run(RANGE_SPEC, trace)
    assert by_value.ledger == by_trace.ledger


def test_module_level_run_matches_engine():
    assert (
        run(RANGE_SPEC, WORKLOAD).ledger
        == Engine().run(RANGE_SPEC, WORKLOAD).ledger
    )


def test_default_deployment_is_engine_level():
    engine = Engine(Deployment.sharded(2))
    assert engine.run(RANGE_SPEC, WORKLOAD).topology == "sharded(2)"
    # Per-run override wins.
    assert (
        engine.run(RANGE_SPEC, WORKLOAD, Deployment.single()).topology
        == "single"
    )


def test_checking_populates_checks_and_violations():
    spec = QuerySpec(
        protocol="ft-nrp",
        query=RangeQuery(400.0, 600.0),
        tolerance=FractionTolerance(0.2, 0.2),
    )
    report = Engine().run(spec, WORKLOAD, Deployment.single(check_every=1))
    assert report.checks > 0
    assert report.tolerance_ok
    assert report.violations == ()


def test_checking_works_under_sharded_topology():
    spec = QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=4),
        tolerance=RankTolerance(k=4, r=2),
    )
    single = Engine().run(spec, WORKLOAD, Deployment.single(check_every=5))
    sharded = Engine().run(
        spec, WORKLOAD, Deployment.sharded(3, check_every=5)
    )
    assert single.checks == sharded.checks > 0
    assert single.ledger == sharded.ledger


def test_value_eps_report_carries_rank_quality():
    spec = QuerySpec(
        protocol="value-eps", query=TopKQuery(k=4), options={"eps": 25.0}
    )
    report = Engine().run(spec, WORKLOAD, Deployment.single(check_every=5))
    assert report.stack == "valuebased"
    assert report.extras["worst_rank"] >= 4
    assert report.extras["value_guarantee_held"] is True


def test_spatial_spec_runs_under_both_topologies():
    from repro.spatial.queries import SpatialKnnQuery

    spec = QuerySpec(
        protocol="rtp-2d",
        query=SpatialKnnQuery(q=(500.0, 500.0), k=3),
        tolerance=RankTolerance(k=3, r=2),
    )
    workload = Workload.moving_objects(n_objects=30, horizon=50.0, seed=2)
    report = Engine().run(spec, workload)
    assert report.stack == "spatial"
    assert report.maintenance_messages > 0
    sharded = Engine().run(spec, workload, Deployment.sharded(2))
    assert sharded.topology == "sharded(2)"
    assert sharded.ledger == report.ledger
    assert sharded.final_answer == report.final_answer


def test_spatial_parallel_runs_on_the_transport():
    """``sharded(n, parallel=True)`` serves spatial protocols now."""
    from repro.spatial.queries import SpatialKnnQuery

    spec = QuerySpec(
        protocol="rtp-2d",
        query=SpatialKnnQuery(q=(500.0, 500.0), k=3),
        tolerance=RankTolerance(k=3, r=2),
    )
    workload = Workload.moving_objects(n_objects=30, horizon=50.0, seed=2)
    sequential = Engine().run(spec, workload, Deployment.sharded(2))
    parallel = Engine().run(
        spec, workload, Deployment.sharded(2, parallel=True)
    )
    assert parallel.ledger == sequential.ledger
    assert parallel.final_answer == sequential.final_answer
    assert "transport" in parallel.extras["replay"]
    # Nonzero latency composes too: deferred deliveries cross the
    # process boundary on the in-flight plane, ledger still identical.
    delayed_seq = Engine().run(
        spec, workload, Deployment.sharded(2, latency=0.5)
    )
    delayed_par = Engine().run(
        spec, workload, Deployment.sharded(2, parallel=True, latency=0.5)
    )
    assert delayed_par.ledger == delayed_seq.ledger
    assert delayed_par.final_answer == delayed_seq.final_answer


def test_run_queries_shared_deployment():
    specs = {
        "warn": QuerySpec(
            protocol="ft-nrp",
            query=RangeQuery(600.0, 1000.0),
            tolerance=FractionTolerance(0.2, 0.2),
        ),
        "hot": QuerySpec(
            protocol="rtp",
            query=TopKQuery(k=3),
            tolerance=RankTolerance(k=3, r=2),
        ),
    }
    report = Engine().run_queries(specs, WORKLOAD)
    assert report.stack == "multiquery"
    assert set(report.answers) == {"warn", "hot"}
    assert report.extras["sharing_factor"] >= 1.0
    with pytest.raises(ValueError, match="single"):
        Engine().run_queries(specs, WORKLOAD, Deployment.sharded(2))


# ----------------------------------------------------------------------
# Sharded + parallel fan-out (decomposable protocols)
# ----------------------------------------------------------------------
def test_report_extras_carry_replay_diagnostics():
    """Every batched run reports which kernel ran and what it counted."""
    report = Engine().run(RANGE_SPEC, WORKLOAD, Deployment.single())
    stats = report.extras["replay"]
    assert stats["mode"] == "batch"
    assert stats["kernel"] in ("columnar", "run", "chunk")
    assert stats["records"] == report.n_records
    # The bailout counters the dispatch benchmark reads.
    for key in (
        "dispatches",
        "staged",
        "chunk_scans",
        "suffix_rescans",
        "broadcast_truncations",
        "inflight_truncations",
    ):
        assert stats[key] >= 0
    assert "dispatch_bailout_at" in stats
    event = Engine().run(
        RANGE_SPEC, WORKLOAD, Deployment.single(replay_mode="event")
    )
    assert event.extras["replay"]["mode"] == "event"
    assert event.extras["replay"]["dispatches"] == event.n_records


def test_fanout_merges_replay_diagnostics():
    fanned = Engine().run(
        RANGE_SPEC, WORKLOAD, Deployment.sharded(3, parallel=True)
    )
    stats = fanned.extras["replay"]
    assert stats["records"] == fanned.n_records
    assert stats["kernel"] in ("columnar", "run", "chunk", "mixed")


def test_fanout_matches_sequential_for_decomposable_protocol():
    sequential = Engine().run(RANGE_SPEC, WORKLOAD)
    fanned = Engine().run(
        RANGE_SPEC, WORKLOAD, Deployment.sharded(3, parallel=True)
    )
    assert fanned.ledger == sequential.ledger
    assert fanned.final_answer == sequential.final_answer


def test_fanout_not_used_for_coupled_protocols():
    # RTP ranks globally: parallel=True must fall back to the sequential
    # coordinator and still match the single server exactly.
    spec = QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=4),
        tolerance=RankTolerance(k=4, r=2),
    )
    single = Engine().run(spec, WORKLOAD)
    sharded = Engine().run(
        spec, WORKLOAD, Deployment.sharded(3, parallel=True)
    )
    assert sharded.ledger == single.ledger
    assert sharded.final_answer == single.final_answer


def test_decomposability_flags():
    from repro.protocols.no_filter import NoFilterProtocol
    from repro.protocols.rtp import RankToleranceProtocol
    from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol

    assert ZeroToleranceRangeProtocol(RangeQuery(0.0, 1.0)).decomposable_maintenance
    assert NoFilterProtocol(RangeQuery(0.0, 1.0)).decomposable_maintenance
    assert not NoFilterProtocol(TopKQuery(k=2)).decomposable_maintenance
    assert not RankToleranceProtocol(
        TopKQuery(k=2), RankTolerance(k=2, r=1)
    ).decomposable_maintenance
