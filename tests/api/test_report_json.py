"""``RunReport.extras`` must stay JSON-serializable — guarded, not hoped.

The extras mapping feeds artifact files and flattened result rows;
before this guard nothing protected new payloads (the durability
counters are the first deeply-nested ones).  The report normalizes at
construction and fails fast, naming the offending key path.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.api.report import RunReport
from repro.durability import DurabilityPolicy
from repro.network.accounting import LedgerSnapshot
from repro.queries.range_query import RangeQuery


def _report(extras) -> RunReport:
    return RunReport(
        protocol="zt-nrp",
        stack="streams",
        topology="single",
        ledger=LedgerSnapshot(initialization={}, maintenance={}),
        n_streams=1,
        n_records=0,
        wall_seconds=0.0,
        extras=extras,
    )


def test_numpy_scalars_normalize_to_python_types():
    report = _report(
        {"count": np.int64(3), "ratio": np.float64(0.5), "flag": np.bool_(True)}
    )
    row = report.row()
    assert json.loads(json.dumps(row))["count"] == 3
    assert type(report.extras["count"]) is int
    assert type(report.extras["ratio"]) is float
    assert type(report.extras["flag"]) is bool


def test_nested_structures_normalize():
    report = _report(
        {
            "durability": {
                "journal": {"bytes": np.int64(4096)},
                "files": (pathlib.PurePosixPath("a/b.bin"),),
                "shards": {2, 1},
            }
        }
    )
    payload = json.loads(json.dumps(report.row()))
    assert payload["durability"]["journal"]["bytes"] == 4096
    assert payload["durability"]["files"] == ["a/b.bin"]
    assert payload["durability"]["shards"] == [1, 2]


def test_unserializable_extras_fail_fast_with_a_path():
    with pytest.raises(TypeError, match=r"extras\.durability\.handle"):
        _report({"durability": {"handle": object()}})


def test_real_run_report_rows_round_trip(tmp_path):
    """End to end: plain and durable reports dump to JSON unchanged."""
    spec = QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))
    workload = Workload.synthetic(n_streams=50, horizon=100.0, seed=5)
    engine = Engine()

    plain = engine.run(spec, workload, Deployment.single())
    assert json.loads(json.dumps(plain.row()))["protocol"] == plain.protocol

    policy = DurabilityPolicy(
        run_dir=str(tmp_path / "run"), snapshot_every=200, storage="mmap"
    )
    durable = engine.run(spec, workload, Deployment.single(durable=policy))
    payload = json.loads(json.dumps(durable.row()))
    assert payload["durability"]["journal"]["appends"] > 0
    assert payload["durability"]["storage"] == "mmap"
    assert durable.ledger == plain.ledger
