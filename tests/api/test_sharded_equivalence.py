"""The sharded topology's contract, as the ISSUE acceptance states it:

``Engine.run(spec, workload, Deployment.sharded(n))`` produces message
ledgers byte-identical to ``Deployment.single()`` on the workloads of
figures 01 and 09-15 (smoke profile) for all five scalar protocols.

Workloads are rebuilt from each figure module's own smoke parameters,
so the corpus tracks the figures; every scalar protocol runs on every
workload under both topologies and the full ledger snapshots (phase ×
message kind) must compare equal, along with the final answers.
"""

import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.experiments import (
    figure01,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.base import Profile
from repro.queries.knn import KnnQuery, TopKQuery
from repro.queries.range_query import RangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance


def _smoke(figure_module):
    return figure_module._PROFILES[Profile.SMOKE]


def _workloads() -> dict[str, Workload]:
    """One workload per figure, from the figures' own smoke parameters."""
    workloads = {}
    for name, module in [
        ("figure01", figure01),
        ("figure12", figure12),
        ("figure14", figure14),
        ("figure15", figure15),
    ]:
        params = _smoke(module)
        workloads[name] = Workload.synthetic(
            n_streams=params["n_streams"],
            horizon=params["horizon"],
            seed=0,
        )
    params = _smoke(figure13)
    workloads["figure13"] = Workload.synthetic(
        n_streams=params["n_streams"],
        horizon=params["horizon"],
        sigma=params["sigma_values"][-1],
        seed=0,
    )
    for name, module in [("figure09", figure09), ("figure10", figure10)]:
        params = _smoke(module)
        workloads[name] = Workload.tcp(
            n_subnets=params["n_subnets"],
            n_connections=params["n_connections"],
            days=params["days"],
            seed=0,
        )
    params = _smoke(figure11)
    n_max = max(params["stream_counts"])
    workloads["figure11"] = Workload.tcp(
        n_subnets=n_max,
        n_connections=n_max * params["connections_per_stream"],
        days=params["days"],
        seed=0,
    )
    return workloads


WORKLOADS = _workloads()

#: The five scalar protocols of the paper, k/tolerances sized for the
#: smallest smoke population (100 streams).
SCALAR_SPECS = {
    "rtp": QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=5),
        tolerance=RankTolerance(k=5, r=3),
    ),
    "zt-nrp": QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0)),
    "ft-nrp": QuerySpec(
        protocol="ft-nrp",
        query=RangeQuery(400.0, 600.0),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
    "zt-rp": QuerySpec(protocol="zt-rp", query=KnnQuery(q=500.0, k=5)),
    "ft-rp": QuerySpec(
        protocol="ft-rp",
        query=KnnQuery(q=500.0, k=5),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
}


@pytest.mark.parametrize("figure", sorted(WORKLOADS))
@pytest.mark.parametrize("protocol", sorted(SCALAR_SPECS))
def test_sharded_ledger_identical_to_single(figure, protocol):
    engine = Engine()
    spec = SCALAR_SPECS[protocol]
    workload = WORKLOADS[figure]
    single = engine.run(spec, workload, Deployment.single())
    sharded = engine.run(spec, workload, Deployment.sharded(3))
    assert sharded.ledger == single.ledger
    assert sharded.final_answer == single.final_answer
    # extras["replay"] is an execution diagnostic (which kernel ran),
    # legitimately topology-dependent; everything else must agree.
    strip = lambda e: {k: v for k, v in e.items() if k != "replay"}  # noqa: E731
    assert strip(sharded.extras) == strip(single.extras)


@pytest.mark.parametrize("n_shards", [2, 5, 8])
def test_shard_count_never_changes_the_ledger(n_shards):
    engine = Engine()
    spec = SCALAR_SPECS["rtp"]
    workload = WORKLOADS["figure01"]
    single = engine.run(spec, workload, Deployment.single())
    sharded = engine.run(spec, workload, Deployment.sharded(n_shards))
    assert sharded.ledger == single.ledger


@pytest.mark.parametrize("mode", ["event", "batch"])
def test_equivalence_holds_in_both_replay_modes(mode):
    engine = Engine()
    spec = SCALAR_SPECS["ft-rp"]
    workload = WORKLOADS["figure15"]
    single = engine.run(spec, workload, Deployment.single(replay_mode=mode))
    sharded = engine.run(
        spec, workload, Deployment.sharded(4, replay_mode=mode)
    )
    assert sharded.ledger == single.ledger


def test_full_figure_series_identical_under_sharding():
    """A whole figure, end to end: sharded series equal single-server."""
    single = figure15.run(profile=Profile.SMOKE, seed=0)
    sharded = figure15.run(
        profile=Profile.SMOKE,
        seed=0,
        deployment=Deployment.sharded(3),
    )
    assert sharded.series == single.series
    assert sharded.x_values == single.x_values
