"""The staleness-window classification: the split must be exact.

Hand-constructed scenarios in which a violation is *provably* inherent
to latency (a message is in flight, or the run has left its synchronous
prefix) versus one that *provably* flags a protocol bug (the run is
still byte-identical to a synchronous run — no deferred delivery ever —
and the network is quiet), asserting the checker's split matches
exactly, violation by violation.
"""

import numpy as np
import pytest

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.correctness import (
    INHERENT_LATENCY,
    PROTOCOL_BUG,
    Oracle,
    StalenessWindow,
    ToleranceChecker,
    ToleranceViolationError,
)
from repro.network.accounting import MessageLedger
from repro.network.latency import FixedLatency, LatencyChannel
from repro.network.messages import UpdateMessage
from repro.queries.knn import KnnQuery
from repro.queries.range_query import RangeQuery
from repro.sim.engine import SimulationEngine


def make_rig(uplink=2.0):
    """A latency channel plus a checker whose answer we control."""
    engine = SimulationEngine()
    channel = LatencyChannel(
        MessageLedger(), engine, FixedLatency(uplink=uplink, downlink=2.0)
    )
    channel.bind_server(lambda message: None)
    for i in range(4):
        channel.bind_source(i, lambda message: None)
    oracle = Oracle(np.array([500.0, 100.0, 200.0, 300.0]))
    query = RangeQuery(400.0, 600.0)
    oracle.register_query(query)
    answer: set[int] = {0}
    checker = ToleranceChecker(
        oracle=oracle,
        query=query,
        tolerance=None,  # exact answer demanded
        answer_of=lambda: set(answer),
        staleness=StalenessWindow([channel]),
    )
    return engine, channel, oracle, answer, checker


class TestExactSplit:
    def test_violation_in_synchronous_prefix_is_protocol_bug(self):
        engine, channel, oracle, answer, checker = make_rig()
        answer.clear()  # wrong answer, no latency activity whatsoever
        violation = checker.check_now(time=1.0)
        assert violation is not None
        assert violation.classification == PROTOCOL_BUG
        assert checker.report.protocol_bug_count == 1
        assert checker.report.inherent_count == 0
        assert not checker.report.latency_clean

    def test_violation_with_message_in_flight_is_inherent(self):
        engine, channel, oracle, answer, checker = make_rig()
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=450.0))
        assert channel.in_flight_count == 1
        oracle.apply(1, 450.0)  # truth moved; the report still flies
        violation = checker.check_now(time=1.0)
        assert violation is not None
        assert violation.classification == INHERENT_LATENCY

    def test_quiet_violation_in_stale_regime_is_inherent(self):
        """A mis-resolved state can persist after the network drains; a
        quiet instant beyond the synchronous prefix must not be blamed
        on the protocol."""
        engine, channel, oracle, answer, checker = make_rig()
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=450.0))
        oracle.apply(1, 450.0)
        engine.run(until=5.0)  # delivery at t=2: regime is now stale
        assert channel.in_flight_count == 0
        assert channel.deferred_delivered_count == 1
        violation = checker.check_now(time=5.0)
        assert violation is not None
        assert violation.classification == INHERENT_LATENCY

    def test_sequence_splits_exactly(self):
        """prefix-bug, in-flight, post-drain: the counts and per-record
        classifications match the construction one for one."""
        engine, channel, oracle, answer, checker = make_rig()
        answer.clear()
        checker.check_now(time=0.5)  # (1) quiet prefix -> bug
        answer.add(0)
        channel.send_to_server(UpdateMessage(stream_id=1, time=1.0, value=450.0))
        oracle.apply(1, 450.0)
        checker.check_now(time=1.5)  # (2) in flight -> inherent
        engine.run(until=4.0)
        checker.check_now(time=4.0)  # (3) drained, stale regime -> inherent
        report = checker.report
        assert report.violation_count == 3
        assert report.protocol_bug_count == 1
        assert report.inherent_count == 2
        assert [v.classification for v in report.violations] == [
            PROTOCOL_BUG,
            INHERENT_LATENCY,
            INHERENT_LATENCY,
        ]

    def test_satisfied_checks_record_nothing(self):
        engine, channel, oracle, answer, checker = make_rig()
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=450.0))
        assert checker.check_now(time=0.5) is None  # answer still right
        assert checker.report.violation_count == 0
        assert checker.report.inherent_count == 0
        assert checker.report.classified


class TestStalenessWindow:
    def test_lagging_streams_tracks_in_flight_and_window(self):
        engine, channel, *_ = make_rig()
        staleness = StalenessWindow([channel], window=1.0)
        channel.send_to_server(UpdateMessage(stream_id=2, time=0.0, value=1.0))
        assert staleness.lagging_streams(0.0) == {2}
        engine.run(until=2.0)  # delivered at t=2
        assert staleness.lagging_streams(2.5) == {2}  # within window
        assert staleness.lagging_streams(3.5) == set()  # window expired

    def test_zero_window_counts_only_in_flight(self):
        engine, channel, *_ = make_rig()
        staleness = StalenessWindow([channel], window=0.0)
        channel.send_to_server(UpdateMessage(stream_id=2, time=0.0, value=1.0))
        engine.run(until=2.0)
        assert staleness.lagging_streams(2.0) == set()
        assert staleness.quiet(2.0)
        # ... but the regime is stale forever after the late delivery.
        assert staleness.stale_regime
        assert staleness.classify(2.0) == INHERENT_LATENCY

    def test_synchronous_channels_are_ignored(self):
        from repro.network.channel import Channel

        staleness = StalenessWindow([Channel(MessageLedger())])
        assert staleness.channels == []
        assert staleness.quiet(0.0)
        assert staleness.classify(0.0) == PROTOCOL_BUG

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            StalenessWindow([], window=-0.5)


class TestStrictMode:
    def test_strict_raises_on_protocol_bug_only(self):
        engine, channel, oracle, answer, checker = make_rig()
        checker.strict = True
        # Inherent violation: accumulated, not raised.
        channel.send_to_server(UpdateMessage(stream_id=1, time=0.0, value=450.0))
        oracle.apply(1, 450.0)
        assert checker.check_now(time=1.0) is not None
        # Drain, then forge a fresh rig (synchronous prefix) for the bug.
        engine2, channel2, oracle2, answer2, checker2 = make_rig()
        checker2.strict = True
        answer2.clear()
        with pytest.raises(ToleranceViolationError):
            checker2.check_now(time=1.0)

    def test_unclassified_strict_still_raises(self):
        engine, channel, oracle, answer, checker = make_rig()
        plain = ToleranceChecker(
            oracle=oracle,
            query=checker.query,
            tolerance=None,
            answer_of=lambda: set(),
            strict=True,
        )
        with pytest.raises(ToleranceViolationError):
            plain.check_now(time=1.0)


class TestEngineIntegration:
    def test_latency_run_classifies_and_stays_latency_clean(self):
        """A real protocol under heavy latency: violations occur, every
        one is attributed to latency, none to the protocol."""
        engine = Engine()
        spec = QuerySpec(protocol="zt-rp", query=KnnQuery(q=500.0, k=5))
        workload = Workload.synthetic(
            n_streams=100, horizon=120.0, sigma=60.0, seed=0
        )
        report = engine.run(
            spec, workload, Deployment.single(check_every=1, latency=8.0)
        )
        inherent = report.extras["violations_inherent_latency"]
        bugs = report.extras["violations_protocol_bug"]
        assert inherent > 0  # staleness visibly degrades requirement 2
        assert bugs == 0
        assert inherent + bugs == len(report.raw.checker.violations) or (
            report.raw.checker.violation_count == inherent + bugs
        )
        # The violation strings carry the classification tag.
        assert any("[inherent-latency]" in v for v in report.violations)

    def test_synchronous_run_reports_no_classification_extras(self):
        engine = Engine()
        spec = QuerySpec(protocol="zt-rp", query=KnnQuery(q=500.0, k=5))
        workload = Workload.synthetic(n_streams=50, horizon=40.0, seed=0)
        report = engine.run(spec, workload, Deployment.single(check_every=1))
        assert "violations_inherent_latency" not in report.extras
        assert "violations_protocol_bug" not in report.extras


class TestSpatialIntegration:
    def test_spatial_latency_run_classifies_and_stays_clean(self):
        """The -2d stacks classify exactly like the scalar checker."""
        from repro.spatial.queries import SpatialKnnQuery

        engine = Engine()
        spec = QuerySpec(
            protocol="zt-rp-2d", query=SpatialKnnQuery((500.0, 500.0), 5)
        )
        workload = Workload.moving_objects(
            n_objects=60, horizon=150.0, sigma=40.0, seed=2
        )
        report = engine.run(
            spec, workload, Deployment.single(check_every=1, latency=6.0)
        )
        assert report.extras["violations_inherent_latency"] > 0
        assert report.extras["violations_protocol_bug"] == 0
        assert any("[inherent-latency]" in v for v in report.violations)

    def test_spatial_strict_tolerates_inherent_breaches(self):
        from repro.spatial.queries import SpatialKnnQuery

        engine = Engine()
        spec = QuerySpec(
            protocol="zt-rp-2d", query=SpatialKnnQuery((500.0, 500.0), 5)
        )
        workload = Workload.moving_objects(
            n_objects=60, horizon=150.0, sigma=40.0, seed=2
        )
        # The same run that accumulates inherent violations above must
        # complete under strict=True: only protocol bugs abort.
        report = engine.run(
            spec,
            workload,
            Deployment.single(check_every=1, strict=True, latency=6.0),
        )
        assert report.extras["violations_inherent_latency"] > 0

    def test_spatial_synchronous_run_has_no_classification(self):
        from repro.spatial.queries import SpatialKnnQuery

        engine = Engine()
        spec = QuerySpec(
            protocol="zt-rp-2d", query=SpatialKnnQuery((500.0, 500.0), 5)
        )
        workload = Workload.moving_objects(n_objects=40, horizon=60.0, seed=2)
        report = engine.run(spec, workload, Deployment.single(check_every=1))
        assert "violations_inherent_latency" not in report.extras


class TestFanoutIntegration:
    def test_parallel_fanout_supports_latency(self):
        """Decomposable protocols fan out with a latency model riding
        along; latency=0 stays byte-identical to the synchronous run."""
        engine = Engine()
        spec = QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))
        workload = Workload.synthetic(n_streams=120, horizon=80.0, seed=7)
        base = engine.run(spec, workload, Deployment.single())
        fanned = engine.run(
            spec,
            workload,
            Deployment.sharded(2, parallel=True, latency=0.0),
        )
        assert fanned.ledger == base.ledger
        assert fanned.final_answer == base.final_answer
        # A positive fixed delay completes and conserves the multiset
        # (decomposable sources decide reports locally at record time).
        delayed = engine.run(
            spec,
            workload,
            Deployment.sharded(2, parallel=True, latency=3.0),
        )
        assert delayed.final_answer == base.final_answer
