"""Unit tests for the ground-truth oracle."""

import numpy as np
import pytest

from repro.correctness.oracle import Oracle
from repro.queries.knn import KnnQuery, TopKQuery
from repro.queries.range_query import RangeQuery


def test_tracks_applied_values():
    oracle = Oracle(np.array([1.0, 2.0, 3.0]))
    oracle.apply(1, 10.0)
    assert oracle.value_of(1) == 10.0
    assert oracle.value_of(0) == 1.0


def test_values_view_is_read_only():
    oracle = Oracle(np.array([1.0]))
    with pytest.raises(ValueError):
        oracle.values[0] = 5.0


def test_oracle_copies_initial_values():
    initial = np.array([1.0, 2.0])
    oracle = Oracle(initial)
    oracle.apply(0, 99.0)
    assert initial[0] == 1.0


def test_range_truth_without_registration():
    oracle = Oracle(np.array([5.0, 15.0, 25.0]))
    query = RangeQuery(10.0, 20.0)
    assert oracle.true_answer(query) == frozenset({1})


def test_registered_range_truth_is_incremental():
    oracle = Oracle(np.array([5.0, 15.0, 25.0]))
    query = RangeQuery(10.0, 20.0)
    oracle.register_range_query(query)
    assert oracle.true_answer(query) == frozenset({1})
    oracle.apply(0, 12.0)
    oracle.apply(1, 100.0)
    assert oracle.true_answer(query) == frozenset({0})


def test_registered_and_bruteforce_agree_over_random_updates():
    rng = np.random.default_rng(0)
    oracle = Oracle(rng.uniform(0, 100, size=50))
    query = RangeQuery(30.0, 60.0)
    oracle.register_range_query(query)
    for _ in range(300):
        oracle.apply(int(rng.integers(0, 50)), float(rng.uniform(0, 100)))
        assert oracle.true_answer(query) == query.true_answer(oracle.values)


def test_double_registration_is_idempotent():
    oracle = Oracle(np.array([15.0]))
    query = RangeQuery(10.0, 20.0)
    oracle.register_range_query(query)
    oracle.register_range_query(query)
    oracle.apply(0, 5.0)
    assert oracle.true_answer(query) == frozenset()


def test_rank_based_truth():
    oracle = Oracle(np.array([10.0, 50.0, 30.0]))
    assert oracle.true_answer(TopKQuery(k=2)) == frozenset({1, 2})
    oracle.apply(0, 100.0)
    assert oracle.true_answer(TopKQuery(k=2)) == frozenset({0, 1})
    assert oracle.true_answer(KnnQuery(q=45.0, k=1)) == frozenset({1})


def test_non_1d_initial_values_rejected():
    with pytest.raises(ValueError):
        Oracle(np.zeros((2, 2)))


def test_unsupported_query_type_rejected():
    oracle = Oracle(np.array([1.0]))
    with pytest.raises(TypeError):
        oracle.true_answer(object())  # type: ignore[arg-type]


class TestRegisterQuery:
    """Satellite fix: every query kind registers, not just RangeQuery."""

    def test_range_query_gets_incremental_maintenance(self):
        oracle = Oracle(np.array([15.0, 25.0]))
        query = RangeQuery(10.0, 20.0)
        oracle.register_query(query)
        assert query in oracle.registered_queries
        oracle.apply(1, 12.0)
        assert oracle.true_answer(query) == frozenset({0, 1})

    def test_rank_queries_register(self):
        from repro.queries.knn import KMinQuery

        oracle = Oracle(np.array([10.0, 50.0, 30.0]))
        for query in (
            TopKQuery(k=2),
            KnnQuery(q=30.0, k=1),
            KMinQuery(k=1),
        ):
            oracle.register_query(query)
        assert len(oracle.registered_queries) == 3
        assert oracle.true_answer(TopKQuery(k=2)) == frozenset({1, 2})

    def test_registration_is_idempotent(self):
        oracle = Oracle(np.array([1.0]))
        query = TopKQuery(k=1)
        oracle.register_query(query)
        oracle.register_query(query)
        assert oracle.registered_queries == [query]

    def test_unsupported_type_raises_at_registration(self):
        oracle = Oracle(np.array([1.0]))
        with pytest.raises(TypeError):
            oracle.register_query(object())  # type: ignore[arg-type]

    def test_checked_rank_query_run_registers_with_oracle(self, monkeypatch):
        """run_protocol registers non-range queries the same way."""
        from repro.harness.config import RunConfig
        from repro.harness.runner import run_protocol
        from repro.protocols.rtp import RankToleranceProtocol
        from repro.streams.synthetic import (
            SyntheticConfig,
            generate_synthetic_trace,
        )
        from repro.tolerance.rank_tolerance import RankTolerance

        registered = []
        original = Oracle.register_query

        def spy(self, query):
            registered.append(query)
            return original(self, query)

        monkeypatch.setattr(Oracle, "register_query", spy)
        trace = generate_synthetic_trace(
            SyntheticConfig(n_streams=30, horizon=50.0, seed=2)
        )
        query = TopKQuery(k=3)
        tolerance = RankTolerance(k=3, r=2)
        run_protocol(
            trace,
            RankToleranceProtocol(query, tolerance),
            tolerance=tolerance,
            config=RunConfig(check_every=1, strict=True),
        )
        assert registered == [query]
