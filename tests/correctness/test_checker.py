"""Unit tests for the tolerance checker."""

import numpy as np
import pytest

from repro.correctness.checker import ToleranceChecker, ToleranceViolationError
from repro.correctness.oracle import Oracle
from repro.queries.knn import TopKQuery
from repro.queries.range_query import RangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance


def make_checker(answer, tolerance, query=None, **kwargs):
    oracle = Oracle(np.array([10.0, 20.0, 30.0, 40.0]))
    query = query or RangeQuery(15.0, 45.0)
    return (
        oracle,
        ToleranceChecker(
            oracle=oracle,
            query=query,
            tolerance=tolerance,
            answer_of=lambda: answer,
            **kwargs,
        ),
    )


def test_exact_answer_passes_zero_tolerance():
    _, checker = make_checker({1, 2, 3}, tolerance=None)
    assert checker.check(1.0) is None
    assert checker.report.ok
    assert checker.report.checks == 1


def test_zero_tolerance_flags_any_deviation():
    _, checker = make_checker({1, 2}, tolerance=None)
    violation = checker.check(1.0)
    assert violation is not None
    assert "missing" in violation.reason


def test_fraction_tolerance_allows_bounded_errors():
    # True set {1,2,3}; answer has 1 extra of 4 -> F+ = 0.25.
    _, checker = make_checker({0, 1, 2, 3}, FractionTolerance(0.25, 0.0))
    assert checker.check(0.0) is None


def test_fraction_tolerance_rejects_excess():
    _, checker = make_checker({0, 1}, FractionTolerance(0.25, 0.0))
    assert checker.check(0.0) is not None


def test_rank_tolerance_path():
    _, checker = make_checker(
        {2, 3}, RankTolerance(k=2, r=0), query=TopKQuery(k=2)
    )
    assert checker.check(0.0) is None
    _, checker = make_checker(
        {0, 3}, RankTolerance(k=2, r=0), query=TopKQuery(k=2)
    )
    assert checker.check(0.0) is not None


def test_rank_tolerance_requires_rank_query():
    with pytest.raises(TypeError):
        make_checker({0}, RankTolerance(k=1, r=0), query=RangeQuery(0, 1))


def test_strict_mode_raises():
    _, checker = make_checker({0}, tolerance=None, strict=True)
    with pytest.raises(ToleranceViolationError):
        checker.check(5.0)


def test_sampling_interval():
    _, checker = make_checker({1, 2, 3}, tolerance=None, every=3)
    for t in range(9):
        checker.check(float(t))
    assert checker.report.checks == 3


def test_check_now_ignores_sampling():
    _, checker = make_checker({1, 2, 3}, tolerance=None, every=100)
    checker.check_now(0.0)
    checker.check_now(1.0)
    assert checker.report.checks == 2


def test_violations_capped_but_counted():
    _, checker = make_checker({0}, tolerance=None, max_violations=2)
    for t in range(5):
        checker.check(float(t))
    assert len(checker.report.violations) == 2
    assert checker.report.checks == 5
    assert checker.report.violation_rate == 1.0


def test_invalid_every_rejected():
    with pytest.raises(ValueError):
        make_checker({0}, tolerance=None, every=0)


def test_checker_sees_oracle_updates():
    oracle, checker = make_checker({1, 2, 3}, tolerance=None)
    assert checker.check(0.0) is None
    oracle.apply(0, 16.0)  # stream 0 enters the range; answer now stale
    assert checker.check(1.0) is not None
