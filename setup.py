"""Setuptools shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
so PEP-517 editable installs (``pip install -e .``) cannot build a wheel.
This shim enables the legacy path: ``python setup.py develop`` (or
``pip install -e . --no-build-isolation --no-use-pep517``).
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
